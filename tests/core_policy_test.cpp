// Tests for the policy layer: excess-load arithmetic (eqs. (6)-(8)) and the
// LBP-1 / LBP-2 / baseline directive generation.

#include <gtest/gtest.h>

#include <map>

#include "core/baseline.hpp"
#include "core/excess.hpp"
#include "core/lbp1.hpp"
#include "core/lbp2.hpp"

namespace lbsim::core {
namespace {

/// A canned SystemView for policy unit tests.
class FakeView final : public SystemView {
 public:
  FakeView(std::vector<markov::NodeParams> nodes, std::vector<std::size_t> queues,
           double d = 0.02)
      : nodes_(std::move(nodes)), queues_(std::move(queues)), d_(d),
        up_(nodes_.size(), true) {}

  [[nodiscard]] std::size_t node_count() const override { return nodes_.size(); }
  [[nodiscard]] std::size_t queue_length(int n) const override {
    return queues_.at(static_cast<std::size_t>(n));
  }
  [[nodiscard]] bool is_up(int n) const override {
    return up_.at(static_cast<std::size_t>(n));
  }
  [[nodiscard]] markov::NodeParams node_params(int n) const override {
    return nodes_.at(static_cast<std::size_t>(n));
  }
  [[nodiscard]] double per_task_delay_mean() const override { return d_; }

  void set_down(int n) { up_.at(static_cast<std::size_t>(n)) = false; }

 private:
  std::vector<markov::NodeParams> nodes_;
  std::vector<std::size_t> queues_;
  double d_;
  std::vector<bool> up_;
};

std::vector<markov::NodeParams> paper_nodes() {
  return {markov::NodeParams{1.08, 0.05, 0.1}, markov::NodeParams{1.86, 0.05, 0.05}};
}

// ---------- excess-load arithmetic ----------

TEST(ExcessTest, FairShareProportionalToSpeed) {
  // (100, 200) with rates (1.08, 1.86): fair shares 110.2 / 189.8, so node 1
  // holds ~10.2 excess and node 0 none (worked example from Section 4 data).
  const std::vector<double> rates{1.08, 1.86};
  const std::vector<std::size_t> loads{100, 200};
  EXPECT_DOUBLE_EQ(excess_load(rates, loads, 0), 0.0);
  EXPECT_NEAR(excess_load(rates, loads, 1), 200.0 - (1.86 / 2.94) * 300.0, 1e-9);
}

TEST(ExcessTest, BalancedSystemHasNoExcess) {
  const std::vector<double> rates{1.0, 1.0};
  const std::vector<std::size_t> loads{50, 50};
  EXPECT_DOUBLE_EQ(excess_load(rates, loads, 0), 0.0);
  EXPECT_DOUBLE_EQ(excess_load(rates, loads, 1), 0.0);
}

TEST(ExcessTest, TwoNodePartitionIsEverything) {
  const std::vector<double> rates{1.08, 1.86};
  const std::vector<std::size_t> loads{100, 200};
  EXPECT_DOUBLE_EQ(partition_fraction(rates, loads, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(partition_fraction(rates, loads, 1, 1), 0.0);  // p_jj = 0
}

TEST(ExcessTest, PartitionFractionsSumToOne) {
  const std::vector<double> rates{1.0, 2.0, 4.0, 0.5};
  const std::vector<std::size_t> loads{40, 10, 5, 20};
  for (std::size_t j = 0; j < 4; ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < 4; ++i) sum += partition_fraction(rates, loads, i, j);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "j=" << j;
  }
}

TEST(ExcessTest, SmallerNormalisedLoadGetsBiggerFraction) {
  const std::vector<double> rates{1.0, 1.0, 1.0};
  const std::vector<std::size_t> loads{90, 10, 30};  // node 0 is overloaded
  const double to_light = partition_fraction(rates, loads, 1, 0);
  const double to_heavy = partition_fraction(rates, loads, 2, 0);
  EXPECT_GT(to_light, to_heavy);
}

TEST(ExcessTest, PaperLfConstants) {
  // With the Section 4 parameters: node 0 fails -> 3 tasks to node 1; node 1
  // fails -> 9 tasks to node 0 (worked out from eq. (8)).
  const auto nodes = paper_nodes();
  EXPECT_EQ(lbp2_failure_transfer(nodes, 1, 0), 3u);
  EXPECT_EQ(lbp2_failure_transfer(nodes, 0, 1), 9u);
}

TEST(ExcessTest, LfRequiresRecoveryLaw) {
  auto nodes = paper_nodes();
  nodes[1].lambda_f = 0.0;
  nodes[1].lambda_r = 0.0;
  EXPECT_THROW((void)lbp2_failure_transfer(nodes, 0, 1), std::invalid_argument);
}

TEST(ExcessTest, InitialBalanceTransfersMatchHandComputation) {
  // (100, 200), rates (1.08, 1.86), K = 0.8: node 1 sends round(0.8 * 10.2) = 8.
  const auto transfers =
      initial_balance_transfers({1.08, 1.86}, {100, 200}, 0.8);
  ASSERT_EQ(transfers.size(), 1u);
  EXPECT_EQ(transfers[0].from, 1u);
  EXPECT_EQ(transfers[0].to, 0u);
  EXPECT_EQ(transfers[0].count, 8u);
}

TEST(ExcessTest, InitialBalanceZeroGainMovesNothing) {
  EXPECT_TRUE(initial_balance_transfers({1.08, 1.86}, {100, 200}, 0.0).empty());
}

TEST(ExcessTest, InitialBalanceThreeNodes) {
  const std::vector<double> rates{1.0, 1.0, 1.0};
  const std::vector<std::size_t> loads{90, 0, 0};
  const auto transfers = initial_balance_transfers(rates, loads, 1.0);
  ASSERT_EQ(transfers.size(), 2u);
  std::size_t total = 0;
  for (const auto& t : transfers) {
    EXPECT_EQ(t.from, 0u);
    total += t.count;
  }
  EXPECT_EQ(total, 60u);  // excess = 90 - 30 = 60, split 30/30
}

// ---------- LBP-1 ----------

TEST(Lbp1Test, TwoNodeDirective) {
  Lbp1Policy policy(0, 0.35);
  FakeView view(paper_nodes(), {100, 60});
  const auto directives = policy.on_start(view);
  ASSERT_EQ(directives.size(), 1u);
  EXPECT_EQ(directives[0].from, 0);
  EXPECT_EQ(directives[0].to, 1);
  EXPECT_EQ(directives[0].count, 35u);
}

TEST(Lbp1Test, ZeroGainNoDirective) {
  Lbp1Policy policy(1, 0.0);
  FakeView view(paper_nodes(), {100, 60});
  EXPECT_TRUE(policy.on_start(view).empty());
}

TEST(Lbp1Test, NoActionOnFailureOrRecovery) {
  Lbp1Policy policy(0, 0.35);
  FakeView view(paper_nodes(), {100, 60});
  EXPECT_TRUE(policy.on_failure(0, view).empty());
  EXPECT_TRUE(policy.on_recovery(1, view).empty());
}

TEST(Lbp1Test, MultiNodeFormUsesExcessPartition) {
  Lbp1Policy policy(1.0);
  FakeView view({markov::NodeParams{1.0, 0.0, 0.0}, markov::NodeParams{1.0, 0.0, 0.0},
                 markov::NodeParams{1.0, 0.0, 0.0}},
                {90, 0, 0});
  const auto directives = policy.on_start(view);
  ASSERT_EQ(directives.size(), 2u);
  EXPECT_EQ(directives[0].from, 0);
}

TEST(Lbp1Test, ExplicitSenderRequiresTwoNodes) {
  Lbp1Policy policy(0, 0.5);
  FakeView view({markov::NodeParams{1.0, 0.0, 0.0}, markov::NodeParams{1.0, 0.0, 0.0},
                 markov::NodeParams{1.0, 0.0, 0.0}},
                {10, 10, 10});
  EXPECT_THROW((void)policy.on_start(view), std::invalid_argument);
}

TEST(Lbp1Test, ValidatesConstructionAndClones) {
  EXPECT_THROW(Lbp1Policy(2, 0.5), std::invalid_argument);
  EXPECT_THROW(Lbp1Policy(0, 1.5), std::invalid_argument);
  Lbp1Policy policy(1, 0.25);
  const PolicyPtr copy = policy.clone();
  EXPECT_EQ(copy->name(), policy.name());
}

// ---------- LBP-2 ----------

TEST(Lbp2Test, InitialBalanceDirective) {
  Lbp2Policy policy(0.8);
  FakeView view(paper_nodes(), {100, 200});
  const auto directives = policy.on_start(view);
  ASSERT_EQ(directives.size(), 1u);
  EXPECT_EQ(directives[0].from, 1);
  EXPECT_EQ(directives[0].to, 0);
  EXPECT_EQ(directives[0].count, 8u);
}

TEST(Lbp2Test, FailureTransferUsesLfConstants) {
  Lbp2Policy policy(1.0);
  FakeView view(paper_nodes(), {50, 50});
  view.set_down(1);
  const auto directives = policy.on_failure(1, view);
  ASSERT_EQ(directives.size(), 1u);
  EXPECT_EQ(directives[0].from, 1);
  EXPECT_EQ(directives[0].to, 0);
  EXPECT_EQ(directives[0].count, 9u);
}

TEST(Lbp2Test, FailureTransferCappedByQueue) {
  Lbp2Policy policy(1.0);
  FakeView view(paper_nodes(), {50, 4});  // node 1 only holds 4 tasks
  const auto directives = policy.on_failure(1, view);
  ASSERT_EQ(directives.size(), 1u);
  EXPECT_EQ(directives[0].count, 4u);
}

TEST(Lbp2Test, FailureOfEmptyNodeSendsNothing) {
  Lbp2Policy policy(1.0);
  FakeView view(paper_nodes(), {50, 0});
  EXPECT_TRUE(policy.on_failure(1, view).empty());
}

TEST(Lbp2Test, NoActionOnRecovery) {
  Lbp2Policy policy(1.0);
  FakeView view(paper_nodes(), {50, 50});
  EXPECT_TRUE(policy.on_recovery(0, view).empty());
}

TEST(Lbp2Test, ThreeNodeFailureSplitsAcrossPeers) {
  std::vector<markov::NodeParams> nodes{
      markov::NodeParams{1.0, 0.05, 0.1},
      markov::NodeParams{1.0, 0.05, 0.1},
      markov::NodeParams{2.0, 0.05, 0.1},
  };
  Lbp2Policy policy(1.0);
  FakeView view(nodes, {30, 30, 30});
  const auto directives = policy.on_failure(0, view);
  ASSERT_EQ(directives.size(), 2u);
  std::map<int, std::size_t> by_to;
  for (const auto& d : directives) by_to[d.to] = d.count;
  // Faster peer (node 2) receives more (eq. (8) scales with lambda_di).
  EXPECT_GT(by_to[2], by_to[1]);
}

TEST(Lbp2Test, NameCarriesGain) {
  EXPECT_NE(Lbp2Policy(0.8).name().find("0.8"), std::string::npos);
}

// ---------- baselines ----------

TEST(BaselineTest, NoBalancingDoesNothingEver) {
  NoBalancingPolicy policy;
  FakeView view(paper_nodes(), {100, 0});
  EXPECT_TRUE(policy.on_start(view).empty());
  EXPECT_TRUE(policy.on_failure(0, view).empty());
}

TEST(BaselineTest, ProportionalOnceFullyBalances) {
  ProportionalOncePolicy policy;
  FakeView view(paper_nodes(), {100, 200});
  const auto directives = policy.on_start(view);
  ASSERT_EQ(directives.size(), 1u);
  // Full excess of node 1: round(10.2) = 10.
  EXPECT_EQ(directives[0].count, 10u);
  EXPECT_TRUE(policy.on_failure(1, view).empty());
}

}  // namespace
}  // namespace lbsim::core
