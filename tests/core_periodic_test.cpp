// Tests for the periodic-rebalance extension policy and its engine wiring.

#include <gtest/gtest.h>

#include "core/lbp2.hpp"
#include "core/periodic.hpp"
#include "mc/engine.hpp"
#include "mc/scenario.hpp"

namespace lbsim::core {
namespace {

class FakeView final : public SystemView {
 public:
  FakeView(std::vector<markov::NodeParams> nodes, std::vector<std::size_t> queues)
      : nodes_(std::move(nodes)), queues_(std::move(queues)), up_(nodes_.size(), true) {}
  [[nodiscard]] std::size_t node_count() const override { return nodes_.size(); }
  [[nodiscard]] std::size_t queue_length(int n) const override {
    return queues_.at(static_cast<std::size_t>(n));
  }
  [[nodiscard]] bool is_up(int n) const override {
    return up_.at(static_cast<std::size_t>(n));
  }
  [[nodiscard]] markov::NodeParams node_params(int n) const override {
    return nodes_.at(static_cast<std::size_t>(n));
  }
  [[nodiscard]] double per_task_delay_mean() const override { return 0.02; }
  void set_down(int n) { up_.at(static_cast<std::size_t>(n)) = false; }
  void set_queue(int n, std::size_t q) { queues_.at(static_cast<std::size_t>(n)) = q; }

 private:
  std::vector<markov::NodeParams> nodes_;
  std::vector<std::size_t> queues_;
  std::vector<bool> up_;
};

std::vector<markov::NodeParams> paper_nodes() {
  return {markov::NodeParams{1.08, 0.05, 0.1}, markov::NodeParams{1.86, 0.05, 0.05}};
}

TEST(PeriodicPolicyTest, RebalancesOnTick) {
  PeriodicRebalancePolicy policy(5.0, 1.0);
  FakeView view(paper_nodes(), {100, 200});
  const auto directives = policy.on_periodic(view);
  ASSERT_EQ(directives.size(), 1u);
  EXPECT_EQ(directives[0].from, 1);
  EXPECT_EQ(directives[0].count, 10u);  // full excess of node 1
}

TEST(PeriodicPolicyTest, BalancedTickIsSilent) {
  PeriodicRebalancePolicy policy(5.0, 1.0);
  FakeView view(paper_nodes(), {110, 190});  // ~fair shares for (1.08, 1.86)
  EXPECT_TRUE(policy.on_periodic(view).empty());
}

TEST(PeriodicPolicyTest, DownSenderSkipped) {
  PeriodicRebalancePolicy policy(5.0, 1.0);
  FakeView view(paper_nodes(), {100, 200});
  view.set_down(1);
  EXPECT_TRUE(policy.on_periodic(view).empty());
}

TEST(PeriodicPolicyTest, FailureCompensationOptIn) {
  PeriodicRebalancePolicy bare(5.0, 1.0, false);
  PeriodicRebalancePolicy with_lf(5.0, 1.0, true);
  FakeView view(paper_nodes(), {50, 50});
  EXPECT_TRUE(bare.on_failure(1, view).empty());
  const auto directives = with_lf.on_failure(1, view);
  ASSERT_EQ(directives.size(), 1u);
  EXPECT_EQ(directives[0].count, 9u);  // eq. (8) constant
}

TEST(PeriodicPolicyTest, ValidationAndClone) {
  EXPECT_THROW(PeriodicRebalancePolicy(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(PeriodicRebalancePolicy(5.0, 1.5), std::invalid_argument);
  PeriodicRebalancePolicy policy(5.0, 0.8, true);
  EXPECT_EQ(policy.clone()->name(), policy.name());
  EXPECT_NE(policy.name().find("+LF"), std::string::npos);
}

TEST(PeriodicPolicyTest, DefaultPoliciesIgnoreTicks) {
  Lbp2Policy policy(1.0);
  FakeView view(paper_nodes(), {100, 200});
  EXPECT_TRUE(policy.on_periodic(view).empty());
}

// ---------- engine wiring ----------

TEST(PeriodicEngineTest, TimerFiresAndMovesTasks) {
  mc::ScenarioConfig config = mc::make_two_node_scenario(
      markov::ipdps2006_params(), 100, 60,
      std::make_unique<PeriodicRebalancePolicy>(5.0, 1.0));
  config.rebalance_period = 5.0;
  const mc::RunResult run = mc::run_scenario(config, 3, 0);
  EXPECT_EQ(run.tasks_completed, 160u);
  // The t=0 balance plus several periodic corrections.
  EXPECT_GT(run.bundles_sent, 1u);
}

TEST(PeriodicEngineTest, PeriodicBeatsOneShotUnderChurn) {
  // Continuous correction absorbs churn-induced imbalance better than the
  // same policy with its timer disabled.
  mc::McConfig mc_cfg;
  mc_cfg.replications = 500;
  mc::ScenarioConfig periodic = mc::make_two_node_scenario(
      markov::ipdps2006_params(), 160, 0,
      std::make_unique<PeriodicRebalancePolicy>(10.0, 1.0));
  periodic.rebalance_period = 10.0;
  mc::ScenarioConfig one_shot = periodic.clone();
  one_shot.rebalance_period = 0.0;
  const double with_timer = mc::run_monte_carlo(periodic, mc_cfg).mean();
  const double without_timer = mc::run_monte_carlo(one_shot, mc_cfg).mean();
  EXPECT_LT(with_timer, without_timer);
}

TEST(PeriodicEngineTest, ZeroPeriodMeansNoTicks) {
  mc::ScenarioConfig config = mc::make_two_node_scenario(
      markov::ipdps2006_params(), 40, 40,
      std::make_unique<PeriodicRebalancePolicy>(5.0, 1.0));
  const mc::RunResult run = mc::run_scenario(config, 4, 0);
  EXPECT_EQ(run.tasks_completed, 80u);
}

}  // namespace
}  // namespace lbsim::core
