// Golden-value regression tests pinning the paper operating point.
//
// These values anchor the reproduction of Dhakal et al. (IPDPS 2006):
// the Section 4 measured parameters, and the exact two-node mean/CDF solver
// outputs at the Table 1 / Table 2 operating point (m0 = 100, m1 = 60).
// The solver pins were computed with this repository's own solvers at the
// seed revision; they exist so future refactors cannot silently drift the
// reproduction. If a change intentionally improves accuracy, re-derive the
// numbers and update them together with an explanation in the commit.

#include <gtest/gtest.h>

#include "markov/params.hpp"
#include "markov/two_node_cdf.hpp"
#include "markov/two_node_mean.hpp"
#include "test_support.hpp"

namespace lbsim::markov {
namespace {

// The solver's optimum at the paper operating point sits near gain K = 0.35
// (sweeping K in 0.1 steps gives a flat minimum across [0.3, 0.4]); goldens
// are pinned at this gain.
constexpr double kGoldenGain = 0.35;

// Solver outputs at (m0, m1) = (100, 60), both nodes up, gain 0.35.
// Computed with this repository's solvers; see file comment before editing.
constexpr double kGoldenMeanNoTransit = 141.21564887669729;
constexpr double kGoldenMeanLbp1 = 116.74907081578611;
constexpr double kGoldenCdfMedian = 108.65;
constexpr double kGoldenCdfP90 = 169.85;

// Section 4: lambda_d = (1.08, 1.86) tasks/s, mean failure time 20 s for both
// nodes, mean recovery 10 s (node 0) / 20 s (node 1), per-task delay 0.02 s.
TEST(GoldenParams, Ipdps2006OperatingPoint) {
  const TwoNodeParams p = ipdps2006_params();
  EXPECT_DOUBLE_EQ(p.nodes[0].lambda_d, 1.08);
  EXPECT_DOUBLE_EQ(p.nodes[1].lambda_d, 1.86);
  EXPECT_DOUBLE_EQ(p.nodes[0].lambda_f, 1.0 / 20.0);
  EXPECT_DOUBLE_EQ(p.nodes[1].lambda_f, 1.0 / 20.0);
  EXPECT_DOUBLE_EQ(p.nodes[0].lambda_r, 1.0 / 10.0);
  EXPECT_DOUBLE_EQ(p.nodes[1].lambda_r, 1.0 / 20.0);
  EXPECT_DOUBLE_EQ(p.per_task_delay_mean, 0.02);
  EXPECT_NO_THROW(validate(p));
}

TEST(GoldenParams, Availabilities) {
  const TwoNodeParams p = ipdps2006_params();
  // lambda_r / (lambda_f + lambda_r): 2/3 for node 0, 1/2 for node 1.
  EXPECT_NEAR(availability(p.nodes[0]), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(availability(p.nodes[1]), 0.5, 1e-12);
}

TEST(GoldenParams, WithoutFailuresClearsChurn) {
  const TwoNodeParams p = without_failures(ipdps2006_params());
  for (const auto& n : p.nodes) {
    EXPECT_DOUBLE_EQ(n.lambda_f, 0.0);
  }
  EXPECT_DOUBLE_EQ(p.nodes[0].lambda_d, 1.08);
  EXPECT_DOUBLE_EQ(p.nodes[1].lambda_d, 1.86);
}

// Exact mean solver at the Table 1 operating point (m0, m1) = (100, 60).
// Pins computed from this repo's TwoNodeMeanSolver at the seed revision.
TEST(GoldenMean, Table1OperatingPoint) {
  TwoNodeMeanSolver solver(ipdps2006_params());
  // GOLDEN_MEAN_NO_TRANSIT
  const double no_balance = solver.mean_no_transit(100, 60);
  EXPECT_NEAR_REL(no_balance, kGoldenMeanNoTransit, 1e-9);
  // GOLDEN_MEAN_LBP1
  const double lbp1 = solver.lbp1_mean(100, 60, 0, kGoldenGain);
  EXPECT_NEAR_REL(lbp1, kGoldenMeanLbp1, 1e-9);
  // Balancing at a sensible gain must beat doing nothing.
  EXPECT_LT(lbp1, no_balance);
}

// CDF solver consistency at the same operating point: its mean estimate must
// agree with the exact difference-equation solver, and the golden quantiles
// must stay put.
TEST(GoldenCdf, Table2OperatingPoint) {
  const TwoNodeParams p = ipdps2006_params();
  TwoNodeCdfSolver::Config config;
  TwoNodeCdfSolver cdf_solver(p, config);
  TwoNodeMeanSolver mean_solver(p);

  const CdfCurve curve = cdf_solver.lbp1_cdf(100, 60, 0, kGoldenGain);
  EXPECT_LT(curve.tail_mass(), 0.02);
  EXPECT_NEAR_REL(curve.mean_estimate(), mean_solver.lbp1_mean(100, 60, 0, kGoldenGain),
                  0.02);
  EXPECT_NEAR_REL(curve.quantile(0.5), kGoldenCdfMedian, 1e-9);
  EXPECT_NEAR_REL(curve.quantile(0.9), kGoldenCdfP90, 1e-9);
}

}  // namespace
}  // namespace lbsim::markov
