#pragma once
/// \file test_support.hpp
/// Shared helpers for the test suites: fixed seeds so stochastic tests are
/// reproducible run-to-run, and tolerance comparisons for Monte-Carlo
/// estimates vs analytical values.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

namespace lbsim::test {

/// The one seed every stochastic test uses. Monte-Carlo tolerances below are
/// calibrated at this seed and the default rep counts; changing it may
/// legitimately require re-calibrating them.
inline constexpr std::uint64_t kFixedSeed = 20060425;  // IPDPS 2006 week

/// A second, independent seed for tests that need two distinct streams.
inline constexpr std::uint64_t kAltSeed = 0x9e3779b97f4a7c15ull;

/// |a-b| <= tol * max(1, |a|, |b|): absolute near zero, relative elsewhere.
[[nodiscard]] inline bool near_rel(double a, double b, double tol) {
  const double scale = std::max(1.0, std::max(std::fabs(a), std::fabs(b)));
  return std::fabs(a - b) <= tol * scale;
}

/// gtest predicate: EXPECT_TRUE(near_rel(...)) with a useful message.
[[nodiscard]] inline ::testing::AssertionResult AssertNearRel(const char* a_expr,
                                                              const char* b_expr,
                                                              const char* tol_expr,
                                                              double a, double b,
                                                              double tol) {
  if (near_rel(a, b, tol)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a_expr << " = " << a << " vs " << b_expr << " = " << b
         << " differ by " << std::fabs(a - b) << " (tolerance " << tol_expr << " = "
         << tol << ")";
}

/// EXPECT_NEAR_REL(x, y, 0.05): within 5% (or 0.05 absolute near zero).
#define EXPECT_NEAR_REL(a, b, tol) \
  EXPECT_PRED_FORMAT3(::lbsim::test::AssertNearRel, a, b, tol)
#define ASSERT_NEAR_REL(a, b, tol) \
  ASSERT_PRED_FORMAT3(::lbsim::test::AssertNearRel, a, b, tol)

/// Monte-Carlo sanity band: the estimate must be within `sigmas` standard
/// errors of `expected` (std_error from the estimator itself). Loose enough
/// at the fixed seed to be deterministic, tight enough to catch real drift.
[[nodiscard]] inline bool within_sigmas(double estimate, double std_error, double expected,
                                        double sigmas = 4.0) {
  return std::fabs(estimate - expected) <= sigmas * std_error;
}

}  // namespace lbsim::test
