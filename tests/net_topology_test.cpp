// Property tests for the topology layer (net::Topology): degree invariants,
// connectivity, the closed-form ring/torus diameters, random-regular
// determinism and the handshake lemma, edge-churn isolation guarantees — and
// the theory cross-check that first-order diffusion with Metropolis weights
// contracts imbalance at the Laplacian spectral-gap rate on ring and torus.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "core/local.hpp"
#include "net/topology.hpp"

namespace lbsim::net {
namespace {

// ---------- degree invariants ----------

TEST(TopologyTest, CompleteDegreesAndDiameter) {
  const Topology k5 = Topology::complete(5);
  EXPECT_EQ(k5.node_count(), 5u);
  EXPECT_EQ(k5.edge_count(), 10u);
  EXPECT_EQ(k5.min_degree(), 4u);
  EXPECT_EQ(k5.max_degree(), 4u);
  EXPECT_TRUE(k5.connected());
  EXPECT_EQ(k5.diameter(), 1u);
}

TEST(TopologyTest, RingIsTwoRegular) {
  for (const std::size_t n : {3u, 4u, 7u, 16u, 33u}) {
    const Topology ring = Topology::ring(n);
    EXPECT_EQ(ring.edge_count(), n) << n;
    EXPECT_EQ(ring.min_degree(), 2u) << n;
    EXPECT_EQ(ring.max_degree(), 2u) << n;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(ring.adjacent(i, (i + 1) % n)) << n << ":" << i;
    }
  }
  // n = 2 degenerates to a single edge (no duplicate wrap edge).
  const Topology pair = Topology::ring(2);
  EXPECT_EQ(pair.edge_count(), 1u);
  EXPECT_EQ(pair.max_degree(), 1u);
}

TEST(TopologyTest, TorusIsFourRegularWhenDimsAtLeastThree) {
  const Topology torus = Topology::torus(4, 5);
  EXPECT_EQ(torus.node_count(), 20u);
  EXPECT_EQ(torus.min_degree(), 4u);
  EXPECT_EQ(torus.max_degree(), 4u);
  EXPECT_EQ(torus.edge_count(), 40u);  // handshake: 20 * 4 / 2
  // A 2-wide dimension merges its duplicate wrap edge: degrees drop to 3.
  const Topology narrow = Topology::torus(2, 4);
  EXPECT_EQ(narrow.min_degree(), 3u);
  EXPECT_EQ(narrow.max_degree(), 3u);
}

TEST(TopologyTest, RandomRegularSatisfiesHandshakeLemma) {
  for (const std::size_t d : {2u, 3u, 4u, 6u}) {
    const std::size_t n = 24;
    const Topology rr = Topology::random_regular(n, d, 0xfeedULL);
    EXPECT_EQ(rr.min_degree(), d) << d;
    EXPECT_EQ(rr.max_degree(), d) << d;
    // Handshake lemma: sum of degrees = 2 |E|, so |E| = n d / 2 exactly.
    EXPECT_EQ(rr.edge_count(), n * d / 2) << d;
    EXPECT_TRUE(rr.connected()) << d;
  }
  // d = n - 1 is the complete graph.
  const Topology full = Topology::random_regular(6, 5, 1ULL);
  EXPECT_EQ(full.edge_count(), 15u);
  EXPECT_EQ(full.diameter(), 1u);
}

TEST(TopologyTest, RandomRegularRejectsInfeasibleParameters) {
  // Odd n * odd d violates the handshake lemma; d >= n has no simple graph.
  EXPECT_THROW((void)Topology::random_regular(7, 3, 1ULL), std::invalid_argument);
  EXPECT_THROW((void)Topology::random_regular(5, 5, 1ULL), std::invalid_argument);
  EXPECT_THROW((void)Topology::random_regular(8, 1, 1ULL), std::invalid_argument);
}

// ---------- determinism ----------

TEST(TopologyTest, RandomRegularIsDeterministicInItsSeed) {
  const Topology a = Topology::random_regular(32, 4, 42ULL);
  const Topology b = Topology::random_regular(32, 4, 42ULL);
  for (std::size_t i = 0; i < 32; ++i) {
    ASSERT_EQ(a.degree(i), b.degree(i)) << i;
    for (std::size_t k = 0; k < a.degree(i); ++k) {
      EXPECT_EQ(a.neighbor(i, k), b.neighbor(i, k)) << i << "," << k;
    }
  }
  // A different seed rewires (overwhelmingly likely for 32 nodes).
  const Topology c = Topology::random_regular(32, 4, 43ULL);
  bool any_difference = false;
  for (std::size_t i = 0; i < 32 && !any_difference; ++i) {
    for (std::size_t k = 0; k < 4; ++k) {
      if (a.neighbor(i, k) != c.neighbor(i, k)) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

// ---------- diameter formulas ----------

TEST(TopologyTest, RingDiameterIsHalfTheCycle) {
  for (const std::size_t n : {3u, 4u, 9u, 16u, 25u}) {
    EXPECT_EQ(Topology::ring(n).diameter(), n / 2) << n;
  }
}

TEST(TopologyTest, TorusDiameterIsSumOfHalfDims) {
  for (const auto& [rows, cols] : std::vector<std::pair<std::size_t, std::size_t>>{
           {3, 3}, {4, 4}, {3, 5}, {4, 6}, {5, 5}}) {
    EXPECT_EQ(Topology::torus(rows, cols).diameter(), rows / 2 + cols / 2)
        << rows << "x" << cols;
  }
}

TEST(TopologyTest, TorusDimsFactorisesNearSquare) {
  const TorusDims dims16 = torus_dims(16, 0, 0);
  EXPECT_EQ(dims16.rows, 4u);
  EXPECT_EQ(dims16.cols, 4u);
  const TorusDims dims12 = torus_dims(12, 0, 0);
  EXPECT_EQ(dims12.rows * dims12.cols, 12u);
  EXPECT_GE(dims12.rows, 3u);  // most-square: 3 x 4, never 2 x 6
  // Explicit dims are validated; primes have no >= 2 factorisation.
  EXPECT_THROW((void)torus_dims(12, 3, 5), std::invalid_argument);
  EXPECT_THROW((void)torus_dims(7, 0, 0), std::invalid_argument);
}

// ---------- build dispatch ----------

TEST(TopologyTest, BuildDispatchesOnSpecKind) {
  TopologySpec spec;
  spec.kind = TopologySpec::Kind::kRing;
  EXPECT_EQ(Topology::build(spec, 6).max_degree(), 2u);
  spec.kind = TopologySpec::Kind::kTorus;
  EXPECT_EQ(Topology::build(spec, 9).max_degree(), 4u);
  spec.kind = TopologySpec::Kind::kRandomRegular;
  spec.degree = 4;
  EXPECT_EQ(Topology::build(spec, 10).max_degree(), 4u);
  EXPECT_EQ(kind_from_string("rr"), TopologySpec::Kind::kRandomRegular);
  EXPECT_STREQ(to_string(TopologySpec::Kind::kTorus), "torus");
  EXPECT_THROW((void)kind_from_string("mobius"), std::invalid_argument);
}

// ---------- edge churn ----------

TEST(TopologyTest, EdgeChurnWithSpareNeverIsolatesANode) {
  const Topology base = Topology::random_regular(24, 4, 7ULL);
  for (const double drop : {0.3, 0.7, 1.0}) {
    for (std::uint64_t salt = 0; salt < 8; ++salt) {
      const Topology churned = base.with_edge_churn(drop, /*spare=*/true, 99ULL, salt);
      EXPECT_GE(churned.min_degree(), 1u) << drop << "," << salt;
      EXPECT_LE(churned.edge_count(), base.edge_count());
    }
  }
  // Without the spare rule, drop = 1 removes every edge.
  EXPECT_EQ(base.with_edge_churn(1.0, /*spare=*/false, 99ULL, 1).edge_count(), 0u);
}

TEST(TopologyTest, EdgeChurnIsDeterministicInSeedAndSalt) {
  const Topology base = Topology::ring(16);
  const Topology a = base.with_edge_churn(0.5, true, 5ULL, 3);
  const Topology b = base.with_edge_churn(0.5, true, 5ULL, 3);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t i = 0; i < 16; ++i) {
    ASSERT_EQ(a.degree(i), b.degree(i)) << i;
    for (std::size_t k = 0; k < a.degree(i); ++k) {
      EXPECT_EQ(a.neighbor(i, k), b.neighbor(i, k));
    }
  }
  // Drop probability 0 (environment state 0) keeps the full graph.
  EXPECT_EQ(base.with_edge_churn(0.0, true, 5ULL, 0).edge_count(), base.edge_count());
}

// ---------- theory cross-check: diffusion contracts at the spectral gap ----

/// One real-valued diffusion round x <- (I - alpha W L) x on `graph` with the
/// Metropolis weights the DiffusionPolicy uses (core::metropolis_weight).
std::vector<double> diffusion_round(const Topology& graph, const std::vector<double>& x,
                                    double alpha) {
  std::vector<double> next = x;
  for (std::size_t i = 0; i < graph.node_count(); ++i) {
    for (std::size_t k = 0; k < graph.degree(i); ++k) {
      const std::size_t j = graph.neighbor(i, k);
      if (j <= i) continue;  // each edge once
      const double w = core::metropolis_weight(graph.degree(i), graph.degree(j));
      const double flow = alpha * w * (x[i] - x[j]);
      next[i] -= flow;
      next[j] += flow;
    }
  }
  return next;
}

double imbalance_norm(const std::vector<double>& x) {
  double mean = 0.0;
  for (const double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  double sum = 0.0;
  for (const double v : x) sum += (v - mean) * (v - mean);
  return std::sqrt(sum);
}

/// Cycle Laplacian eigenvalue mu_k = 2 (1 - cos(2 pi k / n)).
double cycle_eigenvalue(std::size_t k, std::size_t n) {
  return 2.0 * (1.0 - std::cos(2.0 * std::numbers::pi * static_cast<double>(k) /
                               static_cast<double>(n)));
}

TEST(DiffusionTheoryTest, RingContractsAtTheSpectralGapRate) {
  // On C_n every degree is 2, so the Metropolis weight is uniformly 1/3 and
  // the iteration matrix is M = I - (alpha/3) L. M is symmetric, so the
  // l2 imbalance contracts by at least gamma = max_{k != 0} |1 - alpha mu_k / 3|
  // every round — the spectral-gap bound this test pins.
  const std::size_t n = 12;
  const double alpha = 0.9;
  const Topology ring = Topology::ring(n);
  double gamma = 0.0;
  for (std::size_t k = 1; k < n; ++k) {
    gamma = std::max(gamma, std::fabs(1.0 - alpha * cycle_eigenvalue(k, n) / 3.0));
  }
  ASSERT_LT(gamma, 1.0);

  std::vector<double> x(n, 0.0);
  x[0] = 120.0;  // worst-case concentration: all load on one node
  double err = imbalance_norm(x);
  for (int round = 0; round < 60; ++round) {
    x = diffusion_round(ring, x, alpha);
    const double next_err = imbalance_norm(x);
    EXPECT_LE(next_err, gamma * err + 1e-9) << "round " << round;
    err = next_err;
  }
  // And the bound is attained: after T rounds the slowest mode dominates, so
  // the decay cannot be much faster than gamma^T either (the projection of
  // the initial condition on the slowest eigenvector is nonzero here).
  EXPECT_GT(err, 0.1 * std::pow(gamma, 60) * 120.0);
}

TEST(DiffusionTheoryTest, TorusContractsAtTheSpectralGapRate) {
  // On the 4 x 4 torus every degree is 4 (weight 1/5) and the Laplacian
  // eigenvalues are sums over the two cycle dimensions:
  // mu_{a,b} = mu_a(C_rows) + mu_b(C_cols).
  const std::size_t rows = 4;
  const std::size_t cols = 4;
  const double alpha = 1.0;
  const Topology torus = Topology::torus(rows, cols);
  double gamma = 0.0;
  for (std::size_t a = 0; a < rows; ++a) {
    for (std::size_t b = 0; b < cols; ++b) {
      if (a == 0 && b == 0) continue;
      const double mu = cycle_eigenvalue(a, rows) + cycle_eigenvalue(b, cols);
      gamma = std::max(gamma, std::fabs(1.0 - alpha * mu / 5.0));
    }
  }
  ASSERT_LT(gamma, 1.0);

  std::vector<double> x(rows * cols, 0.0);
  x[0] = 120.0;
  x[5] = 40.0;
  double err = imbalance_norm(x);
  for (int round = 0; round < 40; ++round) {
    x = diffusion_round(torus, x, alpha);
    const double next_err = imbalance_norm(x);
    EXPECT_LE(next_err, gamma * err + 1e-9) << "round " << round;
    err = next_err;
  }
}

}  // namespace
}  // namespace lbsim::net
