// Parameterised property suites (TEST_P sweeps): invariants that must hold
// across whole regions of the parameter space, not just hand-picked points.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/excess.hpp"
#include "core/lbp1.hpp"
#include "core/lbp2.hpp"
#include "core/optimizer.hpp"
#include "markov/two_node_cdf.hpp"
#include "markov/two_node_mean.hpp"
#include "mc/engine.hpp"

namespace lbsim {
namespace {

// ---------------------------------------------------------------------------
// Property 1: MC agrees with the regeneration solver across the lattice of
// (workloads, gain, churn on/off).
// ---------------------------------------------------------------------------

using McTheoryParam = std::tuple<std::size_t, std::size_t, double, bool>;

std::string mc_theory_name(const ::testing::TestParamInfo<McTheoryParam>& info) {
  return "m0_" + std::to_string(std::get<0>(info.param)) + "_m1_" +
         std::to_string(std::get<1>(info.param)) + "_K" +
         std::to_string(static_cast<int>(std::get<2>(info.param) * 100)) +
         (std::get<3>(info.param) ? "_churn" : "_reliable");
}

class McMatchesTheory : public ::testing::TestWithParam<McTheoryParam> {};

TEST_P(McMatchesTheory, MeanWithinConfidenceBand) {
  const auto [m0, m1, gain, churn] = GetParam();
  markov::TwoNodeParams p = markov::ipdps2006_params();
  if (!churn) p = markov::without_failures(p);
  mc::ScenarioConfig config = mc::make_two_node_scenario(
      p, m0, m1, std::make_unique<core::Lbp1Policy>(0, gain));
  config.churn_enabled = churn;
  mc::McConfig mc_cfg;
  mc_cfg.replications = 700;
  mc_cfg.seed = 0xabc0 + static_cast<std::uint64_t>(gain * 100);
  const mc::McResult result = mc::run_monte_carlo(config, mc_cfg);
  markov::TwoNodeMeanSolver solver(p);
  const double theory = solver.lbp1_mean(m0, m1, 0, gain);
  // 4 sigma: over the 12 sweep points a false failure is ~0.1% likely.
  EXPECT_NEAR(result.mean(), theory, 4.0 * result.std_error())
      << "m0=" << m0 << " m1=" << m1 << " K=" << gain << " churn=" << churn;
}

INSTANTIATE_TEST_SUITE_P(
    GainWorkloadChurnSweep, McMatchesTheory,
    ::testing::Combine(::testing::Values<std::size_t>(40, 80),
                       ::testing::Values<std::size_t>(10, 60),
                       ::testing::Values(0.0, 0.35, 0.9),
                       ::testing::Bool()),
    mc_theory_name);

// ---------------------------------------------------------------------------
// Property 2: task conservation — every injected task is completed exactly
// once, across seeds and policies.
// ---------------------------------------------------------------------------

class TaskConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TaskConservation, Lbp1CompletesExactly) {
  mc::ScenarioConfig config = mc::make_two_node_scenario(
      markov::ipdps2006_params(), 73, 41, std::make_unique<core::Lbp1Policy>(0, 0.4));
  const mc::RunResult run = mc::run_scenario(config, GetParam(), 0);
  EXPECT_EQ(run.tasks_completed, 114u);
}

TEST_P(TaskConservation, Lbp2CompletesExactly) {
  mc::ScenarioConfig config = mc::make_two_node_scenario(
      markov::ipdps2006_params(), 73, 41, std::make_unique<core::Lbp2Policy>(1.0));
  const mc::RunResult run = mc::run_scenario(config, GetParam(), 0);
  EXPECT_EQ(run.tasks_completed, 114u);
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, TaskConservation,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

// ---------------------------------------------------------------------------
// Property 3: the optimal transfer shrinks as the failure rate of the
// receiving node grows (the paper's headline monotonicity claim).
// ---------------------------------------------------------------------------

class GainShrinksWithFailureRate : public ::testing::TestWithParam<double> {};

TEST_P(GainShrinksWithFailureRate, ReceiverChurnReducesTransfer) {
  const double lambda_f = GetParam();
  markov::TwoNodeParams reliable = markov::without_failures(markov::ipdps2006_params());
  markov::TwoNodeParams churny = reliable;
  churny.nodes[1].lambda_f = lambda_f;
  churny.nodes[1].lambda_r = 1.0 / 20.0;
  const auto base = core::optimize_lbp1_exact(reliable, 100, 60);
  const auto with_churn = core::optimize_lbp1_exact(churny, 100, 60);
  EXPECT_LE(with_churn.transfer, base.transfer) << "lambda_f=" << lambda_f;
}

INSTANTIATE_TEST_SUITE_P(FailureRateSweep, GainShrinksWithFailureRate,
                         ::testing::Values(0.01, 0.025, 0.05, 0.1, 0.2));

// ---------------------------------------------------------------------------
// Property 4: CDF validity (monotone, bounded, consistent mean) across
// lattice and transit configurations.
// ---------------------------------------------------------------------------

using CdfParam = std::tuple<std::size_t, std::size_t, std::size_t>;

class CdfValidity : public ::testing::TestWithParam<CdfParam> {};

TEST_P(CdfValidity, MonotoneBoundedAndMeanConsistent) {
  const auto [q0, q1, L] = GetParam();
  const markov::TwoNodeParams p = markov::ipdps2006_params();
  markov::TwoNodeCdfSolver::Config cfg;
  cfg.horizon = 300.0;
  cfg.dt = 0.05;
  const markov::TwoNodeCdfSolver solver(p, cfg);
  const markov::CdfCurve curve =
      L == 0 ? solver.cdf_no_transit(q0, q1) : solver.cdf_with_transit(q0, q1, L, 1);
  double prev = 0.0;
  for (const double v : curve.values) {
    EXPECT_GE(v, prev - 1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
    prev = v;
  }
  markov::TwoNodeMeanSolver mean_solver(p);
  const double mean = L == 0 ? mean_solver.mean_no_transit(q0, q1)
                             : mean_solver.mean_with_transit(q0, q1, L, 1);
  EXPECT_NEAR(curve.mean_estimate(), mean, 0.02 * mean + 0.3);
}

INSTANTIATE_TEST_SUITE_P(LatticeSweep, CdfValidity,
                         ::testing::Values(CdfParam{5, 0, 0}, CdfParam{0, 5, 0},
                                           CdfParam{10, 10, 0}, CdfParam{5, 5, 5},
                                           CdfParam{12, 3, 2}, CdfParam{0, 0, 8},
                                           CdfParam{20, 10, 10}));

// ---------------------------------------------------------------------------
// Property 5: mean solver dominance — adding churn to any node can only
// increase the expected completion time, across rate combinations.
// ---------------------------------------------------------------------------

using ChurnHurtParam = std::tuple<double, double>;

class ChurnNeverHelps : public ::testing::TestWithParam<ChurnHurtParam> {};

TEST_P(ChurnNeverHelps, MeanIncreasesWithChurn) {
  const auto [rate0, rate1] = GetParam();
  markov::TwoNodeParams reliable;
  reliable.nodes[0] = markov::NodeParams{rate0, 0.0, 0.0};
  reliable.nodes[1] = markov::NodeParams{rate1, 0.0, 0.0};
  reliable.per_task_delay_mean = 0.02;
  markov::TwoNodeParams churny = reliable;
  churny.nodes[0].lambda_f = 0.05;
  churny.nodes[0].lambda_r = 0.1;
  churny.nodes[1].lambda_f = 0.05;
  churny.nodes[1].lambda_r = 0.05;
  markov::TwoNodeMeanSolver a(reliable);
  markov::TwoNodeMeanSolver b(churny);
  for (const auto& [m0, m1] : std::vector<std::pair<std::size_t, std::size_t>>{
           {10, 10}, {30, 5}, {1, 25}}) {
    EXPECT_GT(b.mean_no_transit(m0, m1), a.mean_no_transit(m0, m1))
        << rate0 << "," << rate1 << " m=(" << m0 << "," << m1 << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(RateSweep, ChurnNeverHelps,
                         ::testing::Combine(::testing::Values(0.5, 1.08, 3.0),
                                            ::testing::Values(0.5, 1.86, 4.0)));

// ---------------------------------------------------------------------------
// Property 6: LBP-2's LF table (eq. (8)) is dimensionally sane across rates:
// doubling the recovery speed of the failed node halves the backlog shipped.
// ---------------------------------------------------------------------------

class LfScaling : public ::testing::TestWithParam<double> {};

TEST_P(LfScaling, BacklogScalesWithRecoveryTime) {
  const double lambda_r = GetParam();
  std::vector<markov::NodeParams> nodes{markov::NodeParams{1.0, 0.05, 0.1},
                                        markov::NodeParams{1.0, 0.05, lambda_r}};
  std::vector<markov::NodeParams> faster = nodes;
  faster[1].lambda_r = 2.0 * lambda_r;
  const std::size_t slow_recovery = core::lbp2_failure_transfer(nodes, 0, 1);
  const std::size_t fast_recovery = core::lbp2_failure_transfer(faster, 0, 1);
  // floor() can make them equal for tiny values, but never inverted.
  EXPECT_GE(slow_recovery, fast_recovery);
}

INSTANTIATE_TEST_SUITE_P(RecoverySweep, LfScaling,
                         ::testing::Values(0.01, 0.02, 0.05, 0.1, 0.25));

}  // namespace
}  // namespace lbsim
