// Quickstart: the five-minute tour of the library.
//
// 1. Describe a two-node system (rates measured in the paper).
// 2. Ask the regeneration solver for the optimal preemptive transfer (LBP-1).
// 3. Validate the prediction with the Monte-Carlo engine.
// 4. Run the application kernel for real (one matrix-row task).
//
// Build & run:  ./examples/quickstart

#include <iostream>

#include "app/matrix.hpp"
#include "core/lbp1.hpp"
#include "core/optimizer.hpp"
#include "markov/two_node_mean.hpp"
#include "mc/engine.hpp"
#include "util/format.hpp"

using namespace lbsim;

int main() {
  // --- 1. the system of the paper's Section 4 -------------------------------
  // node 0: 1.08 tasks/s, fails every ~20 s, recovers in ~10 s
  // node 1: 1.86 tasks/s, fails every ~20 s, recovers in ~20 s
  // transferring L tasks takes Exp(mean 0.02 * L) seconds
  const markov::TwoNodeParams params = markov::ipdps2006_params();
  const std::size_t m0 = 100, m1 = 60;

  std::cout << "System: rates (" << params.nodes[0].lambda_d << ", "
            << params.nodes[1].lambda_d << ") tasks/s, availabilities ("
            << util::format_double(markov::availability(params.nodes[0]), 2) << ", "
            << util::format_double(markov::availability(params.nodes[1]), 2)
            << "), workload (" << m0 << ", " << m1 << ")\n\n";

  // --- 2. churn-aware one-shot balancing (LBP-1) -----------------------------
  const core::Lbp1Optimum opt = core::optimize_lbp1_exact(params, m0, m1);
  std::cout << "LBP-1 optimum: node " << opt.sender << " ships " << opt.transfer
            << " tasks (gain K = " << util::format_double(opt.gain, 3) << ")\n"
            << "predicted mean completion: "
            << util::format_double(opt.expected_completion, 2) << " s\n";

  // What if we had ignored the churn? (the paper's key message)
  const core::Lbp1Optimum naive =
      core::optimize_lbp1_exact(markov::without_failures(params), m0, m1);
  markov::TwoNodeMeanSolver solver(params);
  const double naive_under_churn = solver.lbp1_mean(m0, m1, naive.sender, naive.gain);
  std::cout << "ignoring churn would pick L = " << naive.transfer << " and cost "
            << util::format_double(naive_under_churn, 2) << " s under churn ("
            << util::format_double(naive_under_churn - opt.expected_completion, 2)
            << " s worse)\n\n";

  // --- 3. Monte-Carlo validation ---------------------------------------------
  mc::ScenarioConfig scenario = mc::make_two_node_scenario(
      params, m0, m1, std::make_unique<core::Lbp1Policy>(opt.sender, opt.gain));
  mc::McConfig mc_cfg;
  mc_cfg.replications = 1000;
  const mc::McResult mc_result = mc::run_monte_carlo(scenario, mc_cfg);
  std::cout << "Monte-Carlo (1000 runs): " << util::format_double(mc_result.mean(), 2)
            << " +- " << util::format_double(mc_result.ci95(), 2) << " s  ("
            << util::format_double(mc_result.mean_failures, 1)
            << " churn events per run on average)\n\n";

  // --- 4. what a "task" actually is ------------------------------------------
  const app::Matrix fixed = app::Matrix::seeded(64, 64, /*seed=*/7);
  std::vector<double> row(64, 1.0);
  const std::vector<double> product = app::multiply_row(row, fixed);
  std::cout << "One task = one row x static 64x64 matrix; first output element: "
            << util::format_double(product[0], 4) << "\n";
  return 0;
}
