// Policy explorer: a command-line advisor that answers the practical question
// the paper leaves the reader with — "given MY rates, delays, and workloads,
// should I balance preemptively (LBP-1) or compensate at failures (LBP-2),
// and with what gain?"
//
// Usage (all flags optional; defaults are the paper's parameters):
//   ./examples/policy_explorer --m0=100 --m1=60 --rate0=1.08 --rate1=1.86
//       --mttf0=20 --mttr0=10 --mttf1=20 --mttr1=20 --delay=0.02 [--reps=800]

#include <iostream>

#include "core/lbp2.hpp"
#include "core/optimizer.hpp"
#include "markov/two_node_cdf.hpp"
#include "mc/engine.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace lbsim;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  markov::TwoNodeParams params;
  params.nodes[0].lambda_d = args.get_double("rate0", 1.08);
  params.nodes[1].lambda_d = args.get_double("rate1", 1.86);
  const double mttf0 = args.get_double("mttf0", 20.0);
  const double mttf1 = args.get_double("mttf1", 20.0);
  params.nodes[0].lambda_f = mttf0 > 0.0 ? 1.0 / mttf0 : 0.0;
  params.nodes[1].lambda_f = mttf1 > 0.0 ? 1.0 / mttf1 : 0.0;
  params.nodes[0].lambda_r = params.nodes[0].lambda_f > 0.0
                                 ? 1.0 / args.get_double("mttr0", 10.0)
                                 : 0.0;
  params.nodes[1].lambda_r = params.nodes[1].lambda_f > 0.0
                                 ? 1.0 / args.get_double("mttr1", 20.0)
                                 : 0.0;
  params.per_task_delay_mean = args.get_double("delay", 0.02);
  const auto m0 = static_cast<std::size_t>(args.get_int64("m0", 100));
  const auto m1 = static_cast<std::size_t>(args.get_int64("m1", 60));
  const auto reps = static_cast<std::size_t>(args.get_int64("reps", 800));

  std::cout << "System under analysis\n"
            << "  node 0: " << params.nodes[0].lambda_d << " tasks/s, availability "
            << util::format_double(markov::availability(params.nodes[0]), 3) << ", " << m0
            << " tasks\n"
            << "  node 1: " << params.nodes[1].lambda_d << " tasks/s, availability "
            << util::format_double(markov::availability(params.nodes[1]), 3) << ", " << m1
            << " tasks\n"
            << "  per-task transfer delay: " << params.per_task_delay_mean << " s\n\n";

  // --- LBP-1: exact churn-aware optimum (analytical) ------------------------
  const core::Lbp1Optimum lbp1 = core::optimize_lbp1_exact(params, m0, m1);
  std::cout << "LBP-1 (preemptive one-shot):\n"
            << "  send " << lbp1.transfer << " tasks from node " << lbp1.sender
            << " (K = " << util::format_double(lbp1.gain, 3) << ")\n"
            << "  predicted mean completion " << util::format_double(lbp1.expected_completion, 2)
            << " s\n";

  // Completion-time distribution tails for risk-aware users.
  markov::TwoNodeCdfSolver::Config cdf_cfg;
  cdf_cfg.horizon = std::max(100.0, 6.0 * lbp1.expected_completion);
  cdf_cfg.dt = cdf_cfg.horizon / 4000.0;
  const markov::TwoNodeCdfSolver cdf_solver(params, cdf_cfg);
  const markov::CdfCurve curve = cdf_solver.lbp1_cdf(m0, m1, lbp1.sender, lbp1.gain);
  std::cout << "  completion-time quantiles: median "
            << util::format_double(curve.quantile(0.5), 1) << " s, p90 "
            << util::format_double(curve.quantile(0.9), 1) << " s, p99 "
            << util::format_double(curve.quantile(0.99), 1) << " s\n\n";

  // --- LBP-2: no-failure initial gain + on-failure compensation (MC) --------
  const core::Lbp2InitialGain gain = core::optimize_lbp2_initial_gain(params, m0, m1);
  mc::ScenarioConfig scenario = mc::make_two_node_scenario(
      params, m0, m1, std::make_unique<core::Lbp2Policy>(gain.gain));
  mc::McConfig mc_cfg;
  mc_cfg.replications = reps;
  const mc::McResult lbp2 = mc::run_monte_carlo(scenario, mc_cfg);
  std::cout << "LBP-2 (react at failure instants):\n"
            << "  initial gain K = " << util::format_double(gain.gain, 2)
            << ", estimated mean completion " << util::format_double(lbp2.mean(), 2)
            << " +- " << util::format_double(lbp2.ci95(), 2) << " s (" << reps
            << " Monte-Carlo runs)\n\n";

  // --- the verdict (the Table 3 tradeoff) ------------------------------------
  const double margin = lbp2.mean() - lbp1.expected_completion;
  std::cout << "Recommendation: ";
  if (margin < -lbp2.ci95()) {
    std::cout << "use LBP-2 — transfer delays are small relative to recovery\n"
                 "times, so compensating at actual failure instants wins by "
              << util::format_double(-margin, 1) << " s.\n";
  } else if (margin > lbp2.ci95()) {
    std::cout << "use LBP-1 — transfers are slow relative to recovery times, so\n"
                 "repeated on-failure shipments waste more than they save ("
              << util::format_double(margin, 1) << " s).\n";
  } else {
    std::cout << "either policy; the two are statistically indistinguishable here\n"
                 "(gap " << util::format_double(margin, 1) << " s within the CI).\n";
  }
  return 0;
}
