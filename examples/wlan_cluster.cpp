// The UNM wireless-LAN experiment, emulated end to end: the Crusoe + P4 pair
// of the paper running the matrix-multiplication application over the
// three-layer architecture of Section 3 (application / communication /
// LB-failure), with the failure injector active.
//
// Prints one annotated realisation (queue trace + churn log) and then a
// 60-realisation summary, like a row of Table 1/2.
//
// Build & run:  ./examples/wlan_cluster [--policy=lbp1|lbp2] [--gain=0.35]

#include <iostream>

#include "core/lbp1.hpp"
#include "core/lbp2.hpp"
#include "core/optimizer.hpp"
#include "stochastic/stats.hpp"
#include "testbed/experiment.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace lbsim;

namespace {

core::PolicyPtr make_policy(const std::string& name, double gain, int sender) {
  if (name == "lbp2") return std::make_unique<core::Lbp2Policy>(gain);
  return std::make_unique<core::Lbp1Policy>(sender, gain);
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::string policy_name = args.get_string("policy", "lbp1");
  const auto m0 = static_cast<std::size_t>(args.get_int64("m0", 100));
  const auto m1 = static_cast<std::size_t>(args.get_int64("m1", 60));
  const auto reps = static_cast<std::size_t>(args.get_int64("reps", 60));

  // Default gain: churn-aware optimum for LBP-1, no-failure optimum for LBP-2
  // (exactly how the paper configures each policy).
  const markov::TwoNodeParams params = markov::ipdps2006_params();
  double gain = args.get_double("gain", -1.0);
  int sender = 0;
  if (policy_name == "lbp1") {
    const core::Lbp1Optimum opt = core::optimize_lbp1_grid(params, m0, m1, 0.05);
    sender = opt.sender;
    if (gain < 0.0) gain = opt.gain;
  } else if (gain < 0.0) {
    gain = core::optimize_lbp2_initial_gain(params, m0, m1).gain;
  }

  std::cout << "Emulated UNM WLAN testbed: Crusoe (1.08 tasks/s) + P4 (1.86 tasks/s)\n"
            << "policy " << policy_name << ", gain " << util::format_double(gain, 2)
            << ", workload (" << m0 << "," << m1 << ")\n\n";

  // --- one annotated realisation -------------------------------------------
  testbed::TestbedConfig config =
      testbed::paper_testbed(m0, m1, make_policy(policy_name, gain, sender));
  mc::RunTrace trace;
  const mc::RunResult run =
      testbed::run_realization(config, args.get_int64("seed", 0x71a2), 0, &trace);
  std::cout << "One realisation: completed " << run.tasks_completed << " tasks in "
            << util::format_double(run.completion_time, 1) << " s (" << run.failures
            << " failures, " << run.tasks_moved << " tasks migrated)\n";
  std::cout << "event log (churn and transfers):\n";
  trace.events.for_each([&](const obs::Record& record) {
    switch (record.kind_enum()) {
      case obs::Kind::kTransferSend:
      case obs::Kind::kTransferDeliver:
        std::cout << "  t=" << util::format_double(record.time, 2) << "  "
                  << obs::kind_name(record.kind_enum()) << " " << record.node << "->"
                  << record.peer << " x" << record.count << "\n";
        break;
      case obs::Kind::kFail:
      case obs::Kind::kRecover:
        std::cout << "  t=" << util::format_double(record.time, 2) << "  "
                  << obs::kind_name(record.kind_enum()) << " " << record.node << "\n";
        break;
      default:
        break;  // per-task and state-plane records are too chatty for stdout
    }
  });

  // queue sizes at a few checkpoints (the Fig. 4 view, numeric form)
  std::cout << "\nqueue sizes over time:\n  t(s)    node1  node2\n";
  for (double t = 0.0; t <= run.completion_time; t += run.completion_time / 10.0) {
    std::cout << "  " << util::format_double(t, 1) << "\t"
              << trace.queue_lengths[0].value_at(t) << "\t"
              << trace.queue_lengths[1].value_at(t) << "\n";
  }

  // --- the paper-style summary over many realisations ----------------------
  const testbed::ExperimentSummary summary = testbed::run_experiment(config, reps);
  std::cout << "\n" << reps << " realisations: mean " << util::format_double(summary.mean(), 2)
            << " +- " << util::format_double(summary.ci95(), 2) << " s, median "
            << util::format_double(stoch::quantile(summary.samples, 0.5), 2)
            << " s, p95 " << util::format_double(stoch::quantile(summary.samples, 0.95), 2)
            << " s\n";
  return 0;
}
