// Volunteer computing ("SETI at Home" scenario from the paper's introduction):
// a dedicated server plus four volunteer desktops that come and go. Shows how
// churn-aware balancing (LBP-2's on-failure compensation) recovers most of the
// throughput lost to churn, compared with churn-oblivious baselines.
//
// Build & run:  ./examples/volunteer_computing [--tasks=600] [--reps=400]

#include <iostream>

#include "core/baseline.hpp"
#include "core/lbp1.hpp"
#include "core/lbp2.hpp"
#include "mc/engine.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace lbsim;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto tasks = static_cast<std::size_t>(args.get_int64("tasks", 600));
  const auto reps = static_cast<std::size_t>(args.get_int64("reps", 400));

  // The pool: one dedicated node (never leaves) and four volunteers whose
  // owners interrupt them at different rates — the setting of the paper's
  // introduction where even "dedicated" nodes may fail.
  markov::MultiNodeParams pool;
  pool.nodes = {
      markov::NodeParams{2.0, 0.0, 0.0},             // dedicated server
      markov::NodeParams{1.5, 1.0 / 15.0, 1.0 / 8.0},   // office desktop
      markov::NodeParams{1.0, 1.0 / 30.0, 1.0 / 30.0},  // home PC, long absences
      markov::NodeParams{2.5, 1.0 / 8.0, 1.0 / 6.0},    // laptop, frequent suspend
      markov::NodeParams{0.8, 1.0 / 60.0, 1.0 / 20.0},  // old workstation
  };
  pool.per_task_delay_mean = 0.05;  // WAN-ish per-task transfer delay

  std::cout << "Volunteer pool: 5 nodes, " << tasks
            << " tasks all arriving at the dedicated server\n"
            << "(availability: 1.00, 0.65, 0.50, 0.43, 0.75)\n\n";

  util::TextTable table({"policy", "mean makespan (s)", "+-95%", "tasks migrated"});
  struct Entry {
    const char* name;
    core::PolicyPtr policy;
  };
  Entry entries[] = {
      {"NoBalancing (server does everything)", std::make_unique<core::NoBalancingPolicy>()},
      {"ProportionalOnce (churn-oblivious)", std::make_unique<core::ProportionalOncePolicy>()},
      {"Preemptive one-shot, K=0.7 (LBP-1 form)", std::make_unique<core::Lbp1Policy>(0.7)},
      {"LBP-2 (initial balance + on-failure)", std::make_unique<core::Lbp2Policy>(1.0)},
  };
  double best = 1e18;
  std::string best_name;
  for (Entry& entry : entries) {
    mc::ScenarioConfig scenario;
    scenario.params = pool;
    scenario.workloads = {tasks, 0, 0, 0, 0};
    scenario.policy = std::move(entry.policy);
    mc::McConfig mc_cfg;
    mc_cfg.replications = reps;
    const mc::McResult result = mc::run_monte_carlo(scenario, mc_cfg);
    table.add_row({entry.name, util::format_double(result.mean(), 1),
                   util::format_double(result.ci95(), 1),
                   util::format_double(result.mean_tasks_moved, 1)});
    if (result.mean() < best) {
      best = result.mean();
      best_name = entry.name;
    }
  }
  table.print(std::cout);
  std::cout << "\nWinner: " << best_name << "\n"
            << "Reading: spreading work onto unreliable volunteers beats hoarding it\n"
               "(see NoBalancing), but only the churn-aware variants — preemptive gain\n"
               "attenuation or on-failure compensation — beat the oblivious split.\n";
  return 0;
}
