// Regenerates Table 3: LBP-1 vs LBP-2 mean completion time under different
// per-task network delays (workload (100, 60)). LBP-1 is evaluated by the
// regeneration theory at its re-optimised gain; LBP-2 by Monte-Carlo with the
// no-failure-optimal initial gain — exactly the paper's methodology. The
// ranking flips near 1 s/task: repeated on-failure transfers stop paying once
// transfer times rival recovery times.

#include <iostream>

#include "bench_common.hpp"
#include "core/lbp2.hpp"
#include "core/optimizer.hpp"
#include "mc/engine.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace lbsim;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bool quick = args.has("quick");
  const auto mc_reps = static_cast<std::size_t>(args.get_int64("mc-reps", quick ? 150 : 800));
  const auto m0 = static_cast<std::size_t>(args.get_int64("m0", 100));
  const auto m1 = static_cast<std::size_t>(args.get_int64("m1", 60));

  bench::print_banner("Table 3", "LBP-1 vs LBP-2 under different network delays");

  struct PaperRow {
    double delay, paper_lbp1, paper_lbp2;
  };
  const PaperRow paper_rows[] = {
      {0.01, 116.82, 112.43}, {0.5, 117.76, 115.94}, {1.0, 120.99, 122.25},
      {2.0, 127.62, 133.02},  {3.0, 131.64, 142.86},
  };

  util::TextTable table({"delay/task (s)", "LBP-1 K*", "LBP-1 (s)", "paper", "LBP-2 (s)",
                         "+-95%", "paper", "winner"});
  double crossover_lo = -1.0, crossover_hi = -1.0, prev_gap = 0.0, prev_delay = 0.0;
  for (const PaperRow& row : paper_rows) {
    markov::TwoNodeParams params = markov::ipdps2006_params();
    params.per_task_delay_mean = row.delay;

    const core::Lbp1Optimum lbp1 = core::optimize_lbp1_grid(params, m0, m1, 0.05);
    const core::Lbp2InitialGain gain = core::optimize_lbp2_initial_gain(params, m0, m1);
    mc::ScenarioConfig scenario = mc::make_two_node_scenario(
        params, m0, m1, std::make_unique<core::Lbp2Policy>(gain.gain));
    mc::McConfig mc_cfg;
    mc_cfg.replications = mc_reps;
    const mc::McResult lbp2 = mc::run_monte_carlo(scenario, mc_cfg);

    const double gap = lbp2.mean() - lbp1.expected_completion;
    if (prev_gap < 0.0 && gap >= 0.0 && crossover_lo < 0.0) {
      crossover_lo = prev_delay;
      crossover_hi = row.delay;
    }
    prev_gap = gap;
    prev_delay = row.delay;

    table.add_row({util::format_double(row.delay, 2), util::format_double(lbp1.gain, 2),
                   util::format_double(lbp1.expected_completion, 2),
                   util::format_double(row.paper_lbp1, 2),
                   util::format_double(lbp2.mean(), 2), util::format_double(lbp2.ci95(), 2),
                   util::format_double(row.paper_lbp2, 2),
                   gap < 0.0 ? "LBP-2" : "LBP-1"});
  }
  table.print(std::cout);

  if (crossover_lo >= 0.0) {
    std::cout << "\nCrossover: LBP-1 overtakes LBP-2 between "
              << util::format_double(crossover_lo, 2) << " and "
              << util::format_double(crossover_hi, 2)
              << " s/task (paper: between 0.5 and 1 s/task).\n";
  } else {
    std::cout << "\nNo crossover observed in the sweep (paper expects one in [0.5, 1]).\n";
  }
  std::cout << "Shape check: LBP-2 wins at small delays, LBP-1 at large delays;\n"
               "both columns increase monotonically with the delay.\n";
  return 0;
}
