// Regenerates Table 3: LBP-1 vs LBP-2 mean completion time under different
// per-task network delays (workload (100, 60)). Thin wrapper over the shared
// artefact runner (`lbsim reproduce table3` produces identical output).

#include <iostream>

#include "cli/artifacts.hpp"
#include "util/cli.hpp"

using namespace lbsim;

namespace {

// Flags the pre-refactor binary honoured but the shared artefact runner fixes
// at the paper's values; warn instead of silently ignoring them.
void warn_dropped(const lbsim::util::CliArgs& args, std::initializer_list<const char*> dropped) {
  for (const char* flag : dropped) {
    if (args.has(flag)) {
      std::cerr << "note: --" << flag
                << " is fixed at the paper's value in this wrapper; use lbsim run/sweep for"
                   " custom parameters\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  warn_dropped(args, {"m0", "m1"});
  cli::ArtifactOptions options;
  options.quick = args.has("quick");
  options.mc_reps = static_cast<std::size_t>(args.get_int64("mc-reps", 0));
  (void)cli::reproduce_artifact("table3", options, std::cout);
  return 0;
}
