// Regenerates Table 2: LBP-2 with the no-failure-optimal initial gain for the
// five Table-1 workloads. Columns: initial gain (ours vs paper's), the
// Monte-Carlo mean of the abstract model (paper's "MC Simulation", 500 runs),
// and the emulated-testbed result (paper's "Exp. Result").

#include <iostream>

#include "bench_common.hpp"
#include "core/lbp2.hpp"
#include "core/optimizer.hpp"
#include "mc/engine.hpp"
#include "testbed/experiment.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace lbsim;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bool quick = args.has("quick");
  const auto mc_reps = static_cast<std::size_t>(args.get_int64("mc-reps", quick ? 100 : 500));
  const auto realizations =
      static_cast<std::size_t>(args.get_int64("realizations", quick ? 10 : 60));
  const bool use_paper_gain = args.get_bool("paper-gains", true);

  bench::print_banner("Table 2", "LBP-2 with the no-failure-optimal initial gain");

  const markov::TwoNodeParams params = markov::ipdps2006_params();
  struct PaperRow {
    std::size_t m0, m1;
    double paper_gain, paper_mc, paper_exp;
  };
  const PaperRow paper_rows[] = {
      {200, 200, 1.00, 277.90, 263.40}, {200, 100, 1.00, 202.40, 188.80},
      {100, 200, 0.80, 203.07, 212.90}, {200, 50, 1.00, 170.81, 171.42},
      {50, 200, 0.95, 189.72, 177.60},
  };

  util::TextTable table({"workload", "K (ours)", "K (paper)", "MC sim (s)", "paper MC",
                         "testbed (s)", "paper exp."});
  for (const PaperRow& row : paper_rows) {
    const core::Lbp2InitialGain fitted =
        core::optimize_lbp2_initial_gain(params, row.m0, row.m1);
    const double gain = use_paper_gain ? row.paper_gain : fitted.gain;

    mc::ScenarioConfig scenario = mc::make_two_node_scenario(
        params, row.m0, row.m1, std::make_unique<core::Lbp2Policy>(gain));
    mc::McConfig mc_cfg;
    mc_cfg.replications = mc_reps;
    const mc::McResult mc_result = mc::run_monte_carlo(scenario, mc_cfg);

    testbed::TestbedConfig tb = testbed::paper_testbed(
        row.m0, row.m1, std::make_unique<core::Lbp2Policy>(gain));
    const testbed::ExperimentSummary summary = testbed::run_experiment(tb, realizations);

    table.add_row({bench::workload_label(row.m0, row.m1),
                   util::format_double(fitted.gain, 2), util::format_double(row.paper_gain, 2),
                   util::format_double(mc_result.mean(), 2),
                   util::format_double(row.paper_mc, 2),
                   util::format_double(summary.mean(), 2),
                   util::format_double(row.paper_exp, 2)});
  }
  table.print(std::cout);

  std::cout << "\nShape check vs Table 1: LBP-2 beats LBP-1 on every workload at the\n"
               "paper's small per-task delay (0.02 s) -- compare with table1 output.\n";
  return 0;
}
