// Regenerates Table 2: LBP-2 with the no-failure-optimal initial gain for the
// five Table-1 workloads. Thin wrapper over the shared artefact runner
// (`lbsim reproduce table2` produces identical output).

#include <iostream>

#include "cli/artifacts.hpp"
#include "util/cli.hpp"

using namespace lbsim;

namespace {

// Flags the pre-refactor binary honoured but the shared artefact runner fixes
// at the paper's values; warn instead of silently ignoring them.
void warn_dropped(const lbsim::util::CliArgs& args, std::initializer_list<const char*> dropped) {
  for (const char* flag : dropped) {
    if (args.has(flag)) {
      std::cerr << "note: --" << flag
                << " is fixed at the paper's value in this wrapper; use lbsim run/sweep for"
                   " custom parameters\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  warn_dropped(args, {"paper-gains"});
  cli::ArtifactOptions options;
  options.quick = args.has("quick");
  options.golden_only = args.has("golden-only");
  options.mc_reps = static_cast<std::size_t>(args.get_int64("mc-reps", 0));
  options.realizations = static_cast<std::size_t>(args.get_int64("realizations", 0));
  (void)cli::reproduce_artifact("table2", options, std::cout);
  return 0;
}
