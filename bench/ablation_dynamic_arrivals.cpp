// Ablation (paper Section 5, future work): "if new external workloads arrive
// regularly ... one simplified approach is to execute load-balancing episodes
// at every external arrival of new workloads." We graft Poisson batch
// arrivals onto the two-node system and compare (a) balancing only at t = 0
// vs (b) re-running the LBP-2 initial balance at every arrival episode, both
// with the LBP-2 on-failure compensation active.

#include <iostream>

#include "cli/report.hpp"
#include "core/lbp2.hpp"
#include "mc/engine.hpp"
#include "node/compute_element.hpp"
#include "node/failure_process.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"
#include "stochastic/stats.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace lbsim;

namespace {

struct DynamicResult {
  double makespan = 0.0;
  std::uint64_t episodes = 0;
};

/// One replication: initial load plus `n_batches` Poisson-arriving batches;
/// completion when everything (including late arrivals) is processed.
DynamicResult run_dynamic(bool rebalance_on_arrival, std::uint64_t seed, std::uint64_t rep,
                          std::size_t n_batches, std::size_t batch_size) {
  const markov::TwoNodeParams p = markov::ipdps2006_params();
  des::Simulator sim;
  stoch::RngStream svc0(seed, rep * 8 + 0), svc1(seed, rep * 8 + 1);
  stoch::RngStream churn0(seed, rep * 8 + 2), churn1(seed, rep * 8 + 3);
  stoch::RngStream net_rng(seed, rep * 8 + 4), arrivals(seed, rep * 8 + 5);

  std::vector<std::unique_ptr<node::ComputeElement>> ces;
  ces.push_back(std::make_unique<node::ComputeElement>(
      sim, 0, [&](const node::Task&, stoch::RngStream& r) { return r.exponential(1.08); },
      svc0));
  ces.push_back(std::make_unique<node::ComputeElement>(
      sim, 1, [&](const node::Task&, stoch::RngStream& r) { return r.exponential(1.86); },
      svc1));

  net::Link link01(sim, 0, 1, std::make_unique<net::ExponentialBundleDelay>(0.02), net_rng);
  net::Link link10(sim, 1, 0, std::make_unique<net::ExponentialBundleDelay>(0.02), net_rng);

  std::size_t remaining = 0;
  bool all_injected = false;
  double completion = 0.0;
  bool done = false;
  for (auto& ce : ces) {
    ce->set_completion_handler([&](const node::Task&) {
      if (--remaining == 0 && all_injected) {
        done = true;
        completion = sim.now();
      }
    });
  }

  DynamicResult result;
  core::Lbp2Policy policy(1.0);
  class View final : public core::SystemView {
   public:
    View(const markov::TwoNodeParams& p,
         const std::vector<std::unique_ptr<node::ComputeElement>>& ces)
        : p_(p), ces_(ces) {}
    [[nodiscard]] std::size_t node_count() const override { return 2; }
    [[nodiscard]] std::size_t queue_length(int n) const override {
      return ces_[static_cast<std::size_t>(n)]->queue_length();
    }
    [[nodiscard]] bool is_up(int n) const override {
      return ces_[static_cast<std::size_t>(n)]->is_up();
    }
    [[nodiscard]] markov::NodeParams node_params(int n) const override {
      return p_.nodes[n];
    }
    [[nodiscard]] double per_task_delay_mean() const override {
      return p_.per_task_delay_mean;
    }

   private:
    const markov::TwoNodeParams& p_;
    const std::vector<std::unique_ptr<node::ComputeElement>>& ces_;
  };
  View view(p, ces);

  const auto execute = [&](const std::vector<core::TransferDirective>& directives) {
    for (const auto& d : directives) {
      node::TaskBatch batch =
          ces[static_cast<std::size_t>(d.from)]->extract_tasks(d.count);
      if (batch.empty()) continue;
      net::Link& link = d.from == 0 ? link01 : link10;
      link.send(std::move(batch), [&](net::DataTransfer&& xfer) {
        ces[static_cast<std::size_t>(xfer.to)]->enqueue_batch(std::move(xfer.tasks));
      });
    }
  };

  // Churn + LBP-2 on-failure compensation (both variants keep this).
  std::vector<std::unique_ptr<node::FailureProcess>> churn;
  stoch::RngStream* churn_rngs[2] = {&churn0, &churn1};
  for (int i = 0; i < 2; ++i) {
    auto process = std::make_unique<node::FailureProcess>(
        sim, *ces[i], std::make_unique<stoch::Exponential>(p.nodes[i].lambda_f),
        std::make_unique<stoch::Exponential>(p.nodes[i].lambda_r), *churn_rngs[i]);
    process->set_failure_handler([&](int who) { execute(policy.on_failure(who, view)); });
    churn.push_back(std::move(process));
  }

  // Initial workload + t = 0 balance.
  std::uint64_t next_id = 1;
  const auto inject = [&](std::size_t at, std::size_t count) {
    remaining += count;
    ces[at]->enqueue_batch(node::make_unit_tasks(count, static_cast<int>(at), next_id));
    next_id += count;
  };
  inject(0, 100);
  inject(1, 60);
  execute(policy.on_start(view));
  ++result.episodes;
  for (auto& process : churn) process->start();

  // Poisson batch arrivals (mean gap 25 s), always landing on node 0 — the
  // worst case for a stale balance.
  double t_arrival = 0.0;
  for (std::size_t b = 0; b < n_batches; ++b) {
    t_arrival += arrivals.exponential(1.0 / 25.0);
    const bool last = (b + 1 == n_batches);
    sim.schedule_at(t_arrival, [&, last] {
      inject(0, batch_size);
      if (rebalance_on_arrival) {
        execute(policy.on_start(view));
        ++result.episodes;
      }
      if (last) all_injected = true;
    });
  }

  sim.run_while_pending([&] { return done; });
  result.makespan = completion;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bool quick = args.has("quick");
  const auto reps = static_cast<std::size_t>(args.get_int64("mc-reps", quick ? 100 : 400));
  const auto n_batches = static_cast<std::size_t>(args.get_int64("batches", 4));
  const auto batch_size = static_cast<std::size_t>(args.get_int64("batch-size", 40));

  cli::print_banner(std::cout, "Ablation: dynamic arrivals (paper Section 5 future work)",
                      "re-running the LB episode at every external arrival");

  util::TextTable table(
      {"variant", "mean makespan (s)", "+-95%", "mean LB episodes"});
  double once = 0.0, every = 0.0;
  for (const bool rebalance : {false, true}) {
    stoch::RunningStats stats;
    double episodes = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
      const DynamicResult result = run_dynamic(rebalance, 0xd1a, r, n_batches, batch_size);
      stats.add(result.makespan);
      episodes += static_cast<double>(result.episodes);
    }
    table.add_row({rebalance ? "LB episode at every arrival" : "LB at t=0 only",
                   util::format_double(stats.mean(), 2),
                   util::format_double(stoch::ci_half_width(stats), 2),
                   util::format_double(episodes / static_cast<double>(reps), 1)});
    (rebalance ? every : once) = stats.mean();
  }
  table.print(std::cout);
  std::cout << "\nShape check: re-balancing at arrivals beats a single t=0 episode -> "
            << (every < once ? "HOLDS" : "VIOLATED") << "\n";
  return 0;
}
