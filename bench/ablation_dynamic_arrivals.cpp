// Ablation (paper Section 5, future work): "if new external workloads arrive
// regularly ... one simplified approach is to execute load-balancing episodes
// at every external arrival of new workloads." Poisson batch arrivals land on
// the two-node system and we compare (a) balancing only at t = 0 vs (b)
// re-running the LBP-2 initial balance at every arrival episode, both with
// the LBP-2 on-failure compensation active.
//
// Thin wrapper over the `open-arrivals` registry family (src/env owns the
// arrival process); `arrivals.rebalance` is the ablation's toggle.

#include <iostream>
#include <string>

#include "cli/registry.hpp"
#include "cli/report.hpp"
#include "mc/engine.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace lbsim;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bool quick = args.has("quick");
  const auto reps = static_cast<std::size_t>(args.get_int64("mc-reps", quick ? 100 : 400));
  const auto n_batches = args.get_int64("batches", 4);
  const auto batch_size = args.get_int64("batch-size", 40);

  cli::print_banner(std::cout, "Ablation: dynamic arrivals (paper Section 5 future work)",
                    "re-running the LB episode at every external arrival");

  const cli::ScenarioSpec& spec = cli::find_scenario("open-arrivals");
  util::TextTable table({"variant", "mean makespan (s)", "+-95%", "mean LB episodes"});
  double once = 0.0, every = 0.0;
  for (const bool rebalance : {false, true}) {
    cli::RawConfig raw;
    raw.set("policy", "lbp2");
    raw.set("arrivals.process", "poisson");
    raw.set("arrivals.rate", "0.04");  // mean gap 25 s
    raw.set("arrivals.count", std::to_string(n_batches));
    raw.set("arrivals.batch", std::to_string(batch_size));
    raw.set("arrivals.target", "0");  // always node 0 — worst case for a stale balance
    raw.set("arrivals.rebalance", rebalance ? "true" : "false");
    const mc::ScenarioConfig scenario = spec.build(spec.schema.resolve(raw));

    mc::McConfig mc_config;
    mc_config.replications = reps;
    mc_config.seed = 0xd1a;
    const mc::McResult result = mc::run_monte_carlo(scenario, mc_config);

    // Episode count is deterministic: the t = 0 balance plus, in variant (b),
    // one episode per arrival epoch.
    const auto episodes = 1 + (rebalance ? n_batches : 0);
    table.add_row({rebalance ? "LB episode at every arrival" : "LB at t=0 only",
                   util::format_double(result.mean(), 2),
                   util::format_double(result.ci95(), 2),
                   util::format_double(static_cast<double>(episodes), 1)});
    (rebalance ? every : once) = result.mean();
  }
  table.print(std::cout);
  std::cout << "\nShape check: re-balancing at arrivals beats a single t=0 episode -> "
            << (every < once ? "HOLDS" : "VIOLATED") << "\n";
  return 0;
}
