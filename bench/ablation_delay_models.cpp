// Ablation: how sensitive are the paper's conclusions to the exponential
// bundle-delay approximation? Monte-Carlo re-runs the Fig. 3 sweep under three
// delay laws with identical means — exponential (the analytical model),
// Erlang per-task (the testbed's law), and deterministic — and compares the
// optimal gains and minima.

#include <iostream>

#include "cli/report.hpp"
#include "core/lbp1.hpp"
#include "mc/engine.hpp"
#include "net/delay_model.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace lbsim;

namespace {

struct SweepResult {
  double best_gain = 0.0;
  double best_mean = 1e18;
};

SweepResult sweep(const markov::TwoNodeParams& params, net::TransferDelayModelPtr delay,
                  std::size_t reps) {
  SweepResult out;
  for (int step = 0; step <= 20; ++step) {
    const double gain = 0.05 * step;
    mc::ScenarioConfig scenario = mc::make_two_node_scenario(
        params, 100, 60, std::make_unique<core::Lbp1Policy>(0, gain));
    scenario.delay_model = delay->clone();
    mc::McConfig mc_cfg;
    mc_cfg.replications = reps;
    const double mean = mc::run_monte_carlo(scenario, mc_cfg).mean();
    if (mean < out.best_mean) {
      out.best_mean = mean;
      out.best_gain = gain;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bool quick = args.has("quick");
  const auto reps = static_cast<std::size_t>(args.get_int64("mc-reps", quick ? 100 : 400));

  cli::print_banner(std::cout, "Ablation: delay-law robustness",
                      "optimal LBP-1 gain under different bundle-delay laws");

  util::TextTable table({"delay/task (s)", "delay law", "K*", "min mean (s)"});
  for (const double d : {0.02, 0.5, 2.0}) {
    markov::TwoNodeParams params = markov::ipdps2006_params();
    params.per_task_delay_mean = d;
    struct Row {
      const char* name;
      net::TransferDelayModelPtr model;
    };
    Row rows[] = {
        {"Exponential bundle (analytic model)",
         std::make_unique<net::ExponentialBundleDelay>(d)},
        {"Erlang per-task (testbed law)", std::make_unique<net::ErlangPerTaskDelay>(d)},
        {"Deterministic linear", std::make_unique<net::DeterministicLinearDelay>(d)},
    };
    for (Row& row : rows) {
      const SweepResult result = sweep(params, std::move(row.model), reps);
      table.add_row({util::format_double(d, 2), row.name,
                     util::format_double(result.best_gain, 2),
                     util::format_double(result.best_mean, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: at the paper's 0.02 s/task the law is irrelevant (the receiver\n"
               "never idles before the bundle lands), so the exponential approximation is\n"
               "exact in effect; at multi-second delays heavier tails (exponential bundle)\n"
               "cost a few extra seconds and push K* down -- same conclusion, now bounded.\n";
  return 0;
}
