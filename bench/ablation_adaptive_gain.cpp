// Ablation: the paper assumes the failure/recovery rates are *known* when
// LBP-1 picks its gain. A deployed balancer must estimate them from observed
// churn. This bench watches each node's up/down history for an observation
// window, feeds the MLE rates into the optimizer, and measures the regret of
// the estimated gain vs the oracle gain (true rates) under the true dynamics.

#include <iostream>

#include "cli/report.hpp"
#include "core/optimizer.hpp"
#include "markov/two_node_mean.hpp"
#include "stochastic/estimate.hpp"
#include "stochastic/rng.hpp"
#include "stochastic/stats.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace lbsim;

namespace {

/// Simulates one node's churn history for `window` seconds and returns the
/// estimated NodeParams.
markov::NodeParams observe_node(const markov::NodeParams& truth, double window,
                                stoch::RngStream& rng) {
  stoch::ChurnObserver observer(0.0);
  double t = 0.0;
  bool up = true;
  while (true) {
    const double sojourn =
        rng.exponential(up ? truth.lambda_f : truth.lambda_r);
    if (t + sojourn > window) break;
    t += sojourn;
    if (up) observer.observe_failure(t);
    else observer.observe_recovery(t);
    up = !up;
  }
  return observer.estimate(window, truth.lambda_d);
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bool quick = args.has("quick");
  const auto trials = static_cast<std::size_t>(args.get_int64("trials", quick ? 20 : 100));
  const auto m0 = static_cast<std::size_t>(args.get_int64("m0", 100));
  const auto m1 = static_cast<std::size_t>(args.get_int64("m1", 60));

  cli::print_banner(std::cout, "Ablation: adaptive gain from estimated rates",
                      "regret of MLE-rate LBP-1 vs the known-rate oracle");

  const markov::TwoNodeParams truth = markov::ipdps2006_params();
  markov::TwoNodeMeanSolver true_solver(truth);
  const core::Lbp1Optimum oracle = core::optimize_lbp1_exact(truth, m0, m1);
  std::cout << "oracle: L* = " << oracle.transfer << ", mean "
            << util::format_double(oracle.expected_completion, 2) << " s\n\n";

  util::TextTable table({"observation window (s)", "mean |L-hat - L*| (tasks)",
                         "mean regret (s)", "worst regret (s)"});
  for (const double window : {200.0, 1000.0, 5000.0, 20000.0}) {
    stoch::RunningStats transfer_error;
    stoch::RunningStats regret;
    double worst = 0.0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      stoch::RngStream rng(0xada, trial * 1000003ULL + static_cast<std::uint64_t>(window));
      markov::TwoNodeParams estimated = truth;
      estimated.nodes[0] = observe_node(truth.nodes[0], window, rng);
      estimated.nodes[1] = observe_node(truth.nodes[1], window, rng);
      const core::Lbp1Optimum fitted = core::optimize_lbp1_exact(estimated, m0, m1);
      // Evaluate the *estimated* decision under the *true* dynamics.
      const double achieved =
          true_solver.lbp1_mean(m0, m1, fitted.sender, fitted.gain);
      transfer_error.add(std::abs(static_cast<double>(fitted.transfer) -
                                  static_cast<double>(oracle.transfer)));
      const double r = achieved - oracle.expected_completion;
      regret.add(r);
      worst = std::max(worst, r);
    }
    table.add_row({util::format_double(window, 0),
                   util::format_double(transfer_error.mean(), 1),
                   util::format_double(regret.mean(), 3),
                   util::format_double(worst, 3)});
  }
  table.print(std::cout);
  std::cout << "\nReading: the Fig. 3 objective is flat around K*, so moderate estimation\n"
               "error is forgiven — a ~30-cycle history (1000 s) already brings the mean\n"
               "regret near 1 s, and it keeps shrinking like 1/sqrt(window). Only very\n"
               "short histories (200 s, ~7 cycles) can misjudge the churn badly enough\n"
               "to pay tens of seconds; rate knowledge is not a practical blocker.\n";
  return 0;
}
