// Regenerates Fig. 2: (top) the empirical pdf of the per-task transfer delay
// with its exponential approximation (mean 0.02 s), and (bottom) the mean
// bundle delay as a function of the number of tasks transferred, which grows
// linearly (30 realisations per point, as in the paper).

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "net/delay_model.hpp"
#include "stochastic/fit.hpp"
#include "stochastic/histogram.hpp"
#include "stochastic/stats.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace lbsim;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const double per_task = args.get_double("per-task-delay", 0.02);
  const double shift = args.get_double("shift", 0.005);
  const int realizations = args.get_int("realizations", 30);
  const auto seed = static_cast<std::uint64_t>(args.get_int64("seed", 2));

  bench::print_banner("Figure 2", "transfer-delay pdf and mean bundle delay vs tasks");

  // --- top: per-task delay pdf (single-task transfers, many samples) ---
  const net::ErlangPerTaskDelay testbed_model(per_task, shift);
  stoch::RngStream rng(seed);
  std::vector<double> single;
  const int pdf_samples = args.has("quick") ? 2000 : 20000;
  for (int i = 0; i < pdf_samples; ++i) single.push_back(testbed_model.sample(1, rng));
  double fitted_shift = 0.0;
  const stoch::ExponentialFit fit = stoch::fit_shifted_exponential(single, &fitted_shift);
  stoch::Histogram hist(0.0, 0.12, 12);
  hist.add_all(single);

  std::cout << "\nPer-task delay pdf (testbed model: " << testbed_model.describe() << ")\n";
  util::TextTable pdf_table({"bin center (s)", "empirical pdf", "shifted-exp fit"});
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    const double t = hist.bin_center(b);
    const double fit_pdf =
        t < fitted_shift ? 0.0 : fit.rate * std::exp(-fit.rate * (t - fitted_shift));
    pdf_table.add_row({util::format_double(t, 3), util::format_double(hist.density(b), 2),
                       util::format_double(fit_pdf, 2)});
  }
  pdf_table.print(std::cout);
  std::cout << "fitted shift " << util::format_double(fitted_shift, 4) << " s, fitted mean "
            << util::format_double(fit.mean, 4) << " s";
  bench::print_comparison("\n  mean per-task delay (s)", per_task + shift, fit.mean);

  // --- bottom: mean delay vs number of tasks, linear fit ---
  std::cout << "\nMean bundle delay vs task count (" << realizations
            << " realisations per point)\n";
  util::TextTable delay_table({"tasks L", "mean delay (s)", "stderr"});
  std::vector<double> xs, ys;
  for (std::size_t L = 10; L <= 100; L += 10) {
    stoch::RunningStats stats;
    for (int r = 0; r < realizations; ++r) stats.add(testbed_model.sample(L, rng));
    delay_table.add_row({std::to_string(L), util::format_double(stats.mean(), 3),
                         util::format_double(stats.std_error(), 3)});
    xs.push_back(static_cast<double>(L));
    ys.push_back(stats.mean());
  }
  delay_table.print(std::cout);
  const stoch::LinearFit line = stoch::fit_linear(xs, ys);
  std::cout << "linear fit: mean_delay = " << util::format_double(line.slope, 4)
            << " * L + " << util::format_double(line.intercept, 4)
            << "   (R^2 = " << util::format_double(line.r_squared, 4) << ")\n";
  bench::print_comparison("slope = per-task delay (s)", per_task, line.slope);
  std::cout << "\nExpected shape: pdf decays exponentially after a small setup shift;\n"
               "mean delay grows linearly in L with slope ~0.02 s/task (paper Fig. 2).\n";
  return 0;
}
