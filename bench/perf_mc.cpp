// google-benchmark microbenchmarks for the Monte-Carlo engine and the testbed
// emulation: replication throughput, thread scaling, RNG stream cost.

#include <benchmark/benchmark.h>

#include "core/lbp1.hpp"
#include "core/lbp2.hpp"
#include "mc/engine.hpp"
#include "stochastic/rng.hpp"
#include "testbed/experiment.hpp"

using namespace lbsim;

namespace {

void BM_RngStreamCreation(benchmark::State& state) {
  std::uint64_t stream = 0;
  for (auto _ : state) {
    stoch::RngStream rng(42, stream++);
    benchmark::DoNotOptimize(rng.uniform01());
  }
}
BENCHMARK(BM_RngStreamCreation);

void BM_ExponentialSampling(benchmark::State& state) {
  stoch::RngStream rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.exponential(1.86));
}
BENCHMARK(BM_ExponentialSampling);

void BM_MonteCarloBatch(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  mc::ScenarioConfig config = mc::make_two_node_scenario(
      markov::ipdps2006_params(), 100, 60, std::make_unique<core::Lbp1Policy>(0, 0.35));
  mc::McConfig mc_cfg;
  mc_cfg.replications = 200;
  mc_cfg.threads = threads;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc::run_monte_carlo(config, mc_cfg).mean());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 200);
}
BENCHMARK(BM_MonteCarloBatch)->Arg(1)->Arg(2)->UseRealTime();

void BM_TestbedRealization(benchmark::State& state) {
  testbed::TestbedConfig config =
      testbed::paper_testbed(100, 60, std::make_unique<core::Lbp2Policy>(1.0));
  std::uint64_t rep = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(testbed::run_realization(config, 42, rep++).completion_time);
  }
}
BENCHMARK(BM_TestbedRealization);

}  // namespace

BENCHMARK_MAIN();
