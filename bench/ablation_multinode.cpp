// Ablation (paper Section 1/5: "the theory ... can be extended to a
// multi-node system in a straightforward way"): a heterogeneous four-node
// volunteer pool under churn, comparing LBP-2, the one-shot preemptive
// excess balance (multi-node LBP-1 form), and baselines, by Monte-Carlo.
// Also cross-checks the multi-node regeneration solver against MC on a
// three-node configuration.

#include <iostream>

#include "cli/report.hpp"
#include "core/baseline.hpp"
#include "core/lbp1.hpp"
#include "core/lbp2.hpp"
#include "markov/multi_node_mean.hpp"
#include "mc/engine.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace lbsim;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bool quick = args.has("quick");
  const auto reps = static_cast<std::size_t>(args.get_int64("mc-reps", quick ? 200 : 1000));

  cli::print_banner(std::cout, "Ablation: multi-node extension",
                      "4-node heterogeneous pool under churn; 3-node solver cross-check");

  // --- 4-node policy comparison ---
  markov::MultiNodeParams pool;
  pool.nodes = {
      markov::NodeParams{1.08, 1.0 / 20.0, 1.0 / 10.0},  // dedicated laptop
      markov::NodeParams{1.86, 1.0 / 20.0, 1.0 / 20.0},  // desktop
      markov::NodeParams{2.50, 1.0 / 10.0, 1.0 / 15.0},  // fast but flaky volunteer
      markov::NodeParams{0.60, 1.0 / 40.0, 1.0 / 10.0},  // slow but steady volunteer
  };
  pool.per_task_delay_mean = 0.02;
  const std::vector<std::size_t> workloads = {180, 40, 0, 20};

  struct Row {
    const char* name;
    core::PolicyPtr policy;
  };
  Row rows[] = {
      {"NoBalancing", std::make_unique<core::NoBalancingPolicy>()},
      {"ProportionalOnce (K=1, no churn-awareness)",
       std::make_unique<core::ProportionalOncePolicy>()},
      {"One-shot preemptive (LBP-1 form, K=0.8)", std::make_unique<core::Lbp1Policy>(0.8)},
      {"LBP-2 (K=1, on-failure compensation)", std::make_unique<core::Lbp2Policy>(1.0)},
  };

  util::TextTable table({"policy", "mean completion (s)", "+-95%", "tasks moved", "churn events"});
  double no_balance_mean = 0.0, lbp2_mean = 0.0;
  for (Row& row : rows) {
    mc::ScenarioConfig scenario;
    scenario.params = pool;
    scenario.workloads = workloads;
    scenario.policy = std::move(row.policy);
    mc::McConfig mc_cfg;
    mc_cfg.replications = reps;
    const mc::McResult result = mc::run_monte_carlo(scenario, mc_cfg);
    table.add_row({row.name, util::format_double(result.mean(), 2),
                   util::format_double(result.ci95(), 2),
                   util::format_double(result.mean_tasks_moved, 1),
                   util::format_double(result.mean_failures, 1)});
    if (std::string(row.name) == "NoBalancing") no_balance_mean = result.mean();
    if (std::string(row.name).rfind("LBP-2", 0) == 0) lbp2_mean = result.mean();
  }
  table.print(std::cout);
  std::cout << "Shape check: LBP-2 < NoBalancing -> "
            << (lbp2_mean < no_balance_mean ? "HOLDS" : "VIOLATED") << "\n";

  // --- 3-node solver vs MC cross-check ---
  std::cout << "\nThree-node regeneration solver vs Monte-Carlo (no policy, one t=0 bundle):\n";
  markov::MultiNodeParams three;
  three.nodes = {markov::NodeParams{1.0, 0.05, 0.1}, markov::NodeParams{2.0, 0.05, 0.05},
                 markov::NodeParams{1.5, 0.025, 0.1}};
  three.per_task_delay_mean = 0.05;
  markov::MultiNodeMeanSolver solver(three);
  const std::vector<std::size_t> queues = {24, 6, 10};
  const std::vector<markov::TransferSpec> transfers = {{0, 1, 6}};
  const double analytic = solver.expected_completion(queues, transfers);

  // MC with a canned policy that reproduces exactly that one bundle.
  class FixedTransferPolicy final : public core::LoadBalancingPolicy {
   public:
    [[nodiscard]] std::string name() const override { return "FixedTransfer"; }
    [[nodiscard]] std::vector<core::TransferDirective> on_start(
        const core::SystemView&) override {
      return {core::TransferDirective{0, 1, 6}};
    }
    [[nodiscard]] core::PolicyPtr clone() const override {
      return std::make_unique<FixedTransferPolicy>(*this);
    }
  };
  mc::ScenarioConfig scenario;
  scenario.params = three;
  scenario.workloads = {30, 6, 10};  // 6 leave node 0 at t=0
  scenario.policy = std::make_unique<FixedTransferPolicy>();
  mc::McConfig mc_cfg;
  mc_cfg.replications = reps * 2;
  const mc::McResult mc_result = mc::run_monte_carlo(scenario, mc_cfg);
  std::cout << "  analytic " << util::format_double(analytic, 2) << " s,  MC "
            << util::format_double(mc_result.mean(), 2) << " +- "
            << util::format_double(mc_result.ci95(), 2) << " s  ("
            << solver.memo_size() << " lattice points)\n";
  return 0;
}
