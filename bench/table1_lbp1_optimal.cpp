// Regenerates Table 1: LBP-1 with the theoretically determined optimal gain
// for five initial workloads. Thin wrapper over the shared artefact runner
// (`lbsim reproduce table1` produces identical output).

#include <iostream>

#include "cli/artifacts.hpp"
#include "util/cli.hpp"

using namespace lbsim;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  cli::ArtifactOptions options;
  options.quick = args.has("quick");
  options.golden_only = args.has("golden-only");
  options.realizations = static_cast<std::size_t>(args.get_int64("realizations", 0));
  (void)cli::reproduce_artifact("table1", options, std::cout);
  return 0;
}
