// Regenerates Table 1: LBP-1 with the theoretically determined optimal gain
// for five initial workloads. Columns: optimal gain (0.05 grid, as in the
// paper), theoretical prediction with node failure, the emulated-testbed
// "experimental" result, and the no-failure theoretical optimum.

#include <iostream>

#include "bench_common.hpp"
#include "core/lbp1.hpp"
#include "core/optimizer.hpp"
#include "testbed/experiment.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace lbsim;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const bool quick = args.has("quick");
  const auto realizations =
      static_cast<std::size_t>(args.get_int64("realizations", quick ? 10 : 60));

  bench::print_banner("Table 1", "LBP-1 at the theoretically optimal gain");

  const markov::TwoNodeParams params = markov::ipdps2006_params();
  struct PaperRow {
    std::size_t m0, m1;
    double paper_gain, paper_theory, paper_exp, paper_no_failure;
  };
  const PaperRow paper_rows[] = {
      {200, 200, 0.15, 274.95, 264.72, 141.94}, {200, 100, 0.35, 210.13, 207.32, 106.93},
      {100, 200, 0.15, 210.13, 229.19, 106.93}, {200, 50, 0.50, 177.09, 172.56, 89.32},
      {50, 200, 0.25, 177.09, 215.66, 89.32},
  };

  util::TextTable table({"workload", "K* (paper)", "sender", "theory (s)", "paper theory",
                         "testbed (s)", "paper exp.", "no-fail theory", "paper no-fail"});
  for (const PaperRow& row : paper_rows) {
    const core::Lbp1Optimum opt = core::optimize_lbp1_grid(params, row.m0, row.m1, 0.05);
    const core::Lbp1Optimum opt_nf = core::optimize_lbp1_grid(
        markov::without_failures(params), row.m0, row.m1, 0.05);

    testbed::TestbedConfig tb = testbed::paper_testbed(
        row.m0, row.m1, std::make_unique<core::Lbp1Policy>(opt.sender, opt.gain));
    const testbed::ExperimentSummary summary = testbed::run_experiment(tb, realizations);

    table.add_row({bench::workload_label(row.m0, row.m1),
                   util::format_double(opt.gain, 2) + " (" +
                       util::format_double(row.paper_gain, 2) + ")",
                   "node " + std::to_string(opt.sender + 1),
                   util::format_double(opt.expected_completion, 2),
                   util::format_double(row.paper_theory, 2),
                   util::format_double(summary.mean(), 2),
                   util::format_double(row.paper_exp, 2),
                   util::format_double(opt_nf.expected_completion, 2),
                   util::format_double(row.paper_no_failure, 2)});
  }
  table.print(std::cout);

  std::cout << "\nShape checks: the sender is always the more-loaded node; symmetric\n"
               "workload pairs share a theory value; failures roughly double the\n"
               "no-failure completion times (availabilities 0.67 / 0.50).\n";
  return 0;
}
