// Ablation (Conclusion claim): as the failure rates grow, the optimal LBP-1
// gain shrinks — "the minimum achievable average overall completion time is
// obtained by reducing the strength of balancing". Sweeps a failure-rate
// multiplier over the paper's base rates and reports K*, L*, and the optimal
// mean, for workload (100, 60).

#include <iostream>

#include "cli/report.hpp"
#include "core/optimizer.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace lbsim;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto m0 = static_cast<std::size_t>(args.get_int64("m0", 100));
  const auto m1 = static_cast<std::size_t>(args.get_int64("m1", 60));

  cli::print_banner(std::cout, "Ablation: failure-rate sweep",
                      "optimal LBP-1 gain vs churn intensity");

  util::TextTable table({"failure multiplier", "mean time to failure (s)", "K* (exact)",
                         "L*", "optimal mean (s)"});
  std::size_t prev_transfer = SIZE_MAX;
  bool monotone = true;
  for (const double mult : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    markov::TwoNodeParams params = markov::ipdps2006_params();
    for (auto& node : params.nodes) {
      node.lambda_f *= mult;
      if (node.lambda_f == 0.0) node.lambda_r = 0.0;
    }
    const core::Lbp1Optimum opt = core::optimize_lbp1_exact(params, m0, m1);
    table.add_row({util::format_double(mult, 2),
                   mult == 0.0 ? "inf" : util::format_double(20.0 / mult, 1),
                   util::format_double(opt.gain, 3), std::to_string(opt.transfer),
                   util::format_double(opt.expected_completion, 2)});
    if (opt.transfer > prev_transfer) monotone = false;
    prev_transfer = opt.transfer;
  }
  table.print(std::cout);
  std::cout << "\nShape check: L* non-increasing in the failure multiplier -> "
            << (monotone ? "HOLDS" : "VIOLATED") << "\n"
            << "(receiver node 2 becomes less reliable, so preemptively shipping\n"
               "work to it pays less; at multiplier 0 the no-failure optimum returns).\n";
  return 0;
}
