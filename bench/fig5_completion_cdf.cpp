// Regenerates Fig. 5: the cumulative distribution function of the overall
// completion time under LBP-1 (gain chosen optimally by the mean solver) for
// initial workloads (50, 0) and (25, 50), with and without failures.

#include <iostream>

#include "bench_common.hpp"
#include "core/optimizer.hpp"
#include "markov/two_node_cdf.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace lbsim;

namespace {

void show_workload(std::size_t m0, std::size_t m1, double horizon, double dt) {
  const markov::TwoNodeParams params = markov::ipdps2006_params();
  const markov::TwoNodeParams reliable = markov::without_failures(params);

  const core::Lbp1Optimum opt = core::optimize_lbp1_grid(params, m0, m1, 0.05);
  std::cout << "\nWorkload (" << m0 << "," << m1 << "): sender node " << opt.sender + 1
            << ", K* = " << util::format_double(opt.gain, 2) << " (L = " << opt.transfer
            << "), predicted mean " << util::format_double(opt.expected_completion, 1)
            << " s\n";

  markov::TwoNodeCdfSolver::Config config;
  config.horizon = horizon;
  config.dt = dt;
  const markov::TwoNodeCdfSolver churny(params, config);
  const markov::TwoNodeCdfSolver clean(reliable, config);
  const markov::CdfCurve with_fail = churny.lbp1_cdf(m0, m1, opt.sender, opt.gain);
  const markov::CdfCurve no_fail = clean.lbp1_cdf(m0, m1, opt.sender, opt.gain);

  util::TextTable table({"t (s)", "P{T<=t} failure", "P{T<=t} no failure"});
  const std::size_t stride = with_fail.grid.size() / 25;
  for (std::size_t k = 0; k < with_fail.grid.size(); k += stride) {
    table.add_row({util::format_double(with_fail.grid[k], 0),
                   util::format_double(with_fail.values[k], 3),
                   util::format_double(no_fail.values[k], 3)});
  }
  table.print(std::cout);
  std::cout << "median: failure " << util::format_double(with_fail.quantile(0.5), 1)
            << " s, no-failure " << util::format_double(no_fail.quantile(0.5), 1) << " s\n"
            << "mean from CDF: failure " << util::format_double(with_fail.mean_estimate(), 1)
            << " s, no-failure " << util::format_double(no_fail.mean_estimate(), 1) << " s\n";

  // Dominance check (the paper's visual: the failure CDF lies to the right).
  bool dominated = true;
  for (std::size_t k = 0; k < with_fail.values.size(); ++k) {
    if (with_fail.values[k] > no_fail.values[k] + 1e-6) {
      dominated = false;
      break;
    }
  }
  std::cout << "Shape check: failure CDF stochastically dominated by no-failure CDF -> "
            << (dominated ? "HOLDS" : "VIOLATED") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const double horizon = args.get_double("horizon", 250.0);
  const double dt = args.get_double("dt", args.has("quick") ? 0.1 : 0.05);

  bench::print_banner("Figure 5", "completion-time CDF under LBP-1, failure vs no-failure");
  show_workload(50, 0, horizon, dt);
  show_workload(25, 50, horizon, dt);
  return 0;
}
