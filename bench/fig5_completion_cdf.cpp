// Regenerates Fig. 5: the completion-time CDF under LBP-1 for workloads
// (50, 0) and (25, 50), with and without failures. Thin wrapper over the
// shared artefact runner (`lbsim reproduce fig5` produces identical output).

#include <iostream>

#include "cli/artifacts.hpp"
#include "util/cli.hpp"

using namespace lbsim;

namespace {

// Flags the pre-refactor binary honoured but the shared artefact runner fixes
// at the paper's values; warn instead of silently ignoring them.
void warn_dropped(const lbsim::util::CliArgs& args, std::initializer_list<const char*> dropped) {
  for (const char* flag : dropped) {
    if (args.has(flag)) {
      std::cerr << "note: --" << flag
                << " is fixed at the paper's value in this wrapper; use lbsim run/sweep for"
                   " custom parameters\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  warn_dropped(args, {"horizon", "dt"});
  cli::ArtifactOptions options;
  options.quick = args.has("quick");
  (void)cli::reproduce_artifact("fig5", options, std::cout);
  return 0;
}
