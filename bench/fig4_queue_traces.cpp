// Regenerates Fig. 4: one realisation of both queue processes under LBP-1 and
// LBP-2 (testbed emulation, workload (100, 60)). The flat segments are node
// down-times; under LBP-2 the downward/upward jumps at failure instants are
// the backup transfers.

#include <iostream>

#include "bench_common.hpp"
#include "core/lbp1.hpp"
#include "core/lbp2.hpp"
#include "testbed/experiment.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace lbsim;

namespace {

void show_realization(const std::string& label, core::PolicyPtr policy, std::uint64_t seed,
                      std::size_t m0, std::size_t m1) {
  testbed::TestbedConfig config = testbed::paper_testbed(m0, m1, std::move(policy));
  mc::RunTrace trace;
  const mc::RunResult run = testbed::run_realization(config, seed, 0, &trace);

  std::cout << "\n--- " << label << " (completion " << util::format_double(run.completion_time, 1)
            << " s, " << run.failures << " failures, " << run.tasks_moved
            << " tasks moved) ---\n";

  const std::size_t columns = 90;
  std::vector<double> xs;
  std::vector<double> q0, q1;
  for (const auto& point :
       trace.queue_lengths[0].resample(0.0, run.completion_time, columns)) {
    xs.push_back(point.time);
    q0.push_back(point.value);
  }
  for (const auto& point :
       trace.queue_lengths[1].resample(0.0, run.completion_time, columns)) {
    q1.push_back(point.value);
  }
  bench::print_ascii_curve(xs, {q0, q1}, {"node 1 queue (Crusoe)", "node 2 queue (P4)"}, 14);

  std::cout << "churn/transfer log (first 12 records):\n";
  std::size_t shown = 0;
  for (const auto& record : trace.events.records()) {
    if (shown++ >= 12) break;
    std::cout << "  t=" << util::format_double(record.time, 2) << "  " << record.tag << " "
              << record.detail << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int64("seed", 2006));
  const auto m0 = static_cast<std::size_t>(args.get_int64("m0", 100));
  const auto m1 = static_cast<std::size_t>(args.get_int64("m1", 60));

  bench::print_banner("Figure 4", "one realisation of the queues under LBP-1 and LBP-2");
  show_realization("LBP-1 (K = 0.35)", std::make_unique<core::Lbp1Policy>(0, 0.35), seed,
                   m0, m1);
  show_realization("LBP-2 (K = 1.0)", std::make_unique<core::Lbp2Policy>(1.0), seed, m0, m1);
  std::cout << "\nExpected shape: long flat segments while a node is down; LBP-2 shows\n"
               "downward (sender) and upward (receiver) jumps at failure instants.\n";
  return 0;
}
