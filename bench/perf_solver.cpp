// google-benchmark microbenchmarks for the analytical engines: mean-solver
// lattice scaling, optimizer cost, CDF integration, and multi-node recursion.

#include <benchmark/benchmark.h>

#include "core/optimizer.hpp"
#include "markov/multi_node_mean.hpp"
#include "markov/two_node_cdf.hpp"
#include "markov/two_node_mean.hpp"

using namespace lbsim;

namespace {

void BM_MeanSolverLattice(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    markov::TwoNodeMeanSolver solver(markov::ipdps2006_params());  // fresh cache
    benchmark::DoNotOptimize(solver.lbp1_mean(m, m * 3 / 5, 0, 0.35));
  }
  state.SetComplexityN(static_cast<std::int64_t>(m));
}
BENCHMARK(BM_MeanSolverLattice)->Arg(50)->Arg(100)->Arg(200)->Complexity();

void BM_MeanSolverHatReuse(benchmark::State& state) {
  // Sweeping K against one solver instance reuses the hatted lattice.
  markov::TwoNodeMeanSolver solver(markov::ipdps2006_params());
  for (auto _ : state) {
    double acc = 0.0;
    for (int k = 0; k <= 20; ++k) acc += solver.lbp1_mean(100, 60, 0, 0.05 * k);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_MeanSolverHatReuse);

void BM_ExactOptimizer(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::optimize_lbp1_exact(markov::ipdps2006_params(), m, m / 2).transfer);
  }
}
BENCHMARK(BM_ExactOptimizer)->Arg(50)->Arg(100);

void BM_CdfSolver(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  markov::TwoNodeCdfSolver::Config config;
  config.horizon = 150.0;
  config.dt = 0.1;
  const markov::TwoNodeCdfSolver solver(markov::ipdps2006_params(), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.lbp1_cdf(m, m / 2, 0, 0.3).values.back());
  }
}
BENCHMARK(BM_CdfSolver)->Arg(10)->Arg(25);

void BM_MultiNodeSolverThreeNodes(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  markov::MultiNodeParams params;
  params.nodes = {markov::NodeParams{1.0, 0.05, 0.1}, markov::NodeParams{2.0, 0.05, 0.05},
                  markov::NodeParams{1.5, 0.025, 0.1}};
  params.per_task_delay_mean = 0.02;
  for (auto _ : state) {
    markov::MultiNodeMeanSolver solver(params);
    benchmark::DoNotOptimize(solver.expected_completion({m, m, m}));
  }
}
BENCHMARK(BM_MultiNodeSolverThreeNodes)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
