// google-benchmark microbenchmarks for the DES kernel: event throughput,
// cancellation cost, and a full two-node replication per policy.

#include <benchmark/benchmark.h>

#include "core/lbp1.hpp"
#include "core/lbp2.hpp"
#include "mc/scenario.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "stochastic/rng.hpp"

using namespace lbsim;

namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stoch::RngStream rng(1);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform01() * 1000.0;
  for (auto _ : state) {
    des::EventQueue queue;
    for (const double t : times) queue.push(t, [] {});
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::EventQueue queue;
    std::vector<des::EventId> ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(queue.push(static_cast<double>(i), [] {}));
    }
    for (std::size_t i = 0; i < n; i += 2) queue.cancel(ids[i]);
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop().serial);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(16384);

void BM_SimulatorSelfScheduling(benchmark::State& state) {
  const auto hops = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    des::Simulator sim;
    std::uint64_t remaining = hops;
    std::function<void()> hop = [&] {
      if (remaining-- > 0) sim.schedule_in(0.001, hop);
    };
    sim.schedule_in(0.001, hop);
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(hops));
}
BENCHMARK(BM_SimulatorSelfScheduling)->Arg(10000);

void BM_TwoNodeReplicationLbp1(benchmark::State& state) {
  mc::ScenarioConfig config = mc::make_two_node_scenario(
      markov::ipdps2006_params(), 100, 60, std::make_unique<core::Lbp1Policy>(0, 0.35));
  std::uint64_t rep = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc::run_scenario(config, 42, rep++).completion_time);
  }
}
BENCHMARK(BM_TwoNodeReplicationLbp1);

void BM_TwoNodeReplicationLbp2(benchmark::State& state) {
  mc::ScenarioConfig config = mc::make_two_node_scenario(
      markov::ipdps2006_params(), 100, 60, std::make_unique<core::Lbp2Policy>(1.0));
  std::uint64_t rep = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc::run_scenario(config, 42, rep++).completion_time);
  }
}
BENCHMARK(BM_TwoNodeReplicationLbp2);

}  // namespace

BENCHMARK_MAIN();
