// Regenerates Fig. 3: the average overall completion time of LBP-1 as a
// function of the gain K for initial workloads (100, 60), with four series:
// regeneration theory, Monte-Carlo simulation of the abstract model, the
// emulated testbed experiment, and the no-failure theory curve.
//
// Paper landmarks: minimum ~117 s at K = 0.35 with failures; minimum at
// K = 0.45 without failures; failure optimum strictly left of the no-failure
// optimum.

#include <iostream>

#include "bench_common.hpp"
#include "core/lbp1.hpp"
#include "markov/two_node_mean.hpp"
#include "mc/engine.hpp"
#include "testbed/experiment.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace lbsim;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto m0 = static_cast<std::size_t>(args.get_int64("m0", 100));
  const auto m1 = static_cast<std::size_t>(args.get_int64("m1", 60));
  const bool quick = args.has("quick");
  const auto mc_reps = static_cast<std::size_t>(args.get_int64("mc-reps", quick ? 100 : 500));
  const auto tb_reps =
      static_cast<std::size_t>(args.get_int64("testbed-reps", quick ? 20 : 60));

  bench::print_banner("Figure 3", "LBP-1 mean completion time vs gain K, workload " +
                                      bench::workload_label(m0, m1));

  const markov::TwoNodeParams params = markov::ipdps2006_params();
  markov::TwoNodeMeanSolver theory(params);
  markov::TwoNodeMeanSolver theory_nf(markov::without_failures(params));

  util::TextTable table({"K", "theory (s)", "MC sim (s)", "+-95%", "testbed (s)", "+-95%",
                         "no-failure theory (s)"});
  std::vector<double> ks;
  std::vector<double> theory_curve, mc_curve, tb_curve, nf_curve;

  double best_k = 0.0, best_mean = 1e18, best_k_nf = 0.0, best_mean_nf = 1e18;
  for (int step = 0; step <= 20; ++step) {
    const double gain = 0.05 * step;
    const double mu = theory.lbp1_mean(m0, m1, 0, gain);
    const double mu_nf = theory_nf.lbp1_mean(m0, m1, 0, gain);

    mc::ScenarioConfig scenario = mc::make_two_node_scenario(
        params, m0, m1, std::make_unique<core::Lbp1Policy>(0, gain));
    mc::McConfig mc_cfg;
    mc_cfg.replications = mc_reps;
    const mc::McResult mc_result = mc::run_monte_carlo(scenario, mc_cfg);

    testbed::TestbedConfig tb =
        testbed::paper_testbed(m0, m1, std::make_unique<core::Lbp1Policy>(0, gain));
    const testbed::ExperimentSummary tb_result = testbed::run_experiment(tb, tb_reps);

    table.add_row({util::format_double(gain, 2), util::format_double(mu, 2),
                   util::format_double(mc_result.mean(), 2),
                   util::format_double(mc_result.ci95(), 2),
                   util::format_double(tb_result.mean(), 2),
                   util::format_double(tb_result.ci95(), 2),
                   util::format_double(mu_nf, 2)});
    ks.push_back(gain);
    theory_curve.push_back(mu);
    mc_curve.push_back(mc_result.mean());
    tb_curve.push_back(tb_result.mean());
    nf_curve.push_back(mu_nf);
    if (mu < best_mean) {
      best_mean = mu;
      best_k = gain;
    }
    if (mu_nf < best_mean_nf) {
      best_mean_nf = mu_nf;
      best_k_nf = gain;
    }
  }
  table.print(std::cout);

  std::cout << "\n";
  bench::print_ascii_curve(ks, {theory_curve, mc_curve, tb_curve, nf_curve},
                           {"theory (failure)", "MC simulation", "testbed experiment",
                            "theory (no failure)"});

  std::cout << "\nOptimal gain with failures:    K* = " << util::format_double(best_k, 2)
            << "  mean " << util::format_double(best_mean, 2) << " s  (paper: 0.35, ~117 s)\n";
  std::cout << "Optimal gain without failures: K* = " << util::format_double(best_k_nf, 2)
            << "  mean " << util::format_double(best_mean_nf, 2) << " s  (paper: 0.45)\n";
  bench::print_comparison("min mean completion (s)", 117.0, best_mean);
  std::cout << "Shape check: K*(failure) < K*(no failure) -> "
            << (best_k < best_k_nf ? "HOLDS" : "VIOLATED") << "\n";
  return 0;
}
