// Regenerates Fig. 1: empirically estimated pdfs of the processing time per
// task with their exponential approximations. Thin wrapper over the shared
// artefact runner (`lbsim reproduce fig1` produces identical output).

#include <iostream>

#include "cli/artifacts.hpp"
#include "util/cli.hpp"

using namespace lbsim;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  cli::ArtifactOptions options;
  options.quick = args.has("quick");
  options.mc_reps = static_cast<std::size_t>(args.get_int64("samples", 0));
  options.seed = static_cast<std::uint64_t>(args.get_int64("seed", 0));
  (void)cli::reproduce_artifact("fig1", options, std::cout);
  return 0;
}
