// Regenerates Fig. 1: empirically estimated pdfs of the processing time per
// task for node 1 (Transmeta Crusoe, 1.08 tasks/s) and node 2 (P4, 1.86
// tasks/s), with their exponential approximations.
//
// The workload generator randomises task sizes (the paper randomises the
// arithmetic precision per row); dividing by the calibrated node speed gives
// the per-task execution times whose histogram and MLE exponential fit are
// printed below.

#include <cmath>
#include <iostream>

#include "app/workload.hpp"
#include "bench_common.hpp"
#include "stochastic/fit.hpp"
#include "stochastic/histogram.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

using namespace lbsim;

namespace {

void fit_and_print(const std::string& node, double rate, std::size_t samples,
                   std::uint64_t seed, double hist_hi) {
  app::WorkloadGenerator generator;
  stoch::RngStream rng(seed);
  const node::TaskBatch batch = generator.generate(samples, 0, rng);
  const auto service = app::calibrated_service(rate);
  std::vector<double> times;
  times.reserve(batch.size());
  stoch::RngStream unused(0);
  for (const auto& task : batch) times.push_back(service(task, unused));

  const stoch::ExponentialFit fit = stoch::fit_exponential(times);
  stoch::Histogram hist(0.0, hist_hi, 12);
  hist.add_all(times);

  std::cout << "\n" << node << " (calibrated rate " << rate << " tasks/s)\n";
  util::TextTable table({"bin center (s)", "empirical pdf", "exp fit pdf"});
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    const double t = hist.bin_center(b);
    table.add_row({util::format_double(t, 2), util::format_double(hist.density(b), 3),
                   util::format_double(fit.rate * std::exp(-fit.rate * t), 3)});
  }
  table.print(std::cout);
  std::cout << "MLE rate: " << util::format_double(fit.rate, 3)
            << " tasks/s  (target " << rate << ")\n";
  bench::print_comparison(node + " fitted rate", rate, fit.rate);
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto samples =
      static_cast<std::size_t>(args.get_int64("samples", args.has("quick") ? 2000 : 20000));
  const auto seed = static_cast<std::uint64_t>(args.get_int64("seed", 1));

  bench::print_banner("Figure 1", "per-task processing-time pdfs + exponential fits");
  fit_and_print("node 1 (Crusoe)", 1.08, samples, seed, 6.0);
  fit_and_print("node 2 (P4)", 1.86, samples, seed + 1, 3.5);
  std::cout << "\nExpected shape: both empirical pdfs decay exponentially and the\n"
               "MLE rates land on the calibrated 1.08 / 1.86 tasks/s of the paper.\n";
  return 0;
}
